// End-to-end tests of the network library OSes: Catnip (DPDK-style, zero copy),
// Catnap (kernel sockets, copies+syscalls), Catmint (RDMA), and their cost signatures.
// Also cross-libOS interop: Catnap and Catnip speak the same wire format.

#include <gtest/gtest.h>

#include <string>

#include "src/core/harness.h"

namespace demi {
namespace {

constexpr std::uint16_t kPort = 9000;

SgArray Sga(const std::string& s) { return SgArray::FromString(s); }

// Establishes a connection between two libOSes; returns {server_conn_qd, client_qd}.
std::pair<QDesc, QDesc> ConnectPair(TestHarness& h, LibOS& server, LibOS& client,
                                    Ipv4Address server_ip) {
  const QDesc listen_qd = *server.Socket();
  EXPECT_TRUE(server.Bind(listen_qd, kPort).ok());
  EXPECT_TRUE(server.Listen(listen_qd).ok());
  auto accept_token = server.AcceptAsync(listen_qd);
  EXPECT_TRUE(accept_token.ok());

  const QDesc client_qd = *client.Socket();
  auto connect_token = client.ConnectAsync(client_qd, Endpoint{server_ip, kPort});
  EXPECT_TRUE(connect_token.ok());

  auto connected = client.Wait(*connect_token, 10 * kSecond);
  EXPECT_TRUE(connected.ok());
  EXPECT_TRUE(connected->status.ok()) << connected->status;
  auto accepted = server.Wait(*accept_token, 10 * kSecond);
  EXPECT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted->status.ok()) << accepted->status;
  return {accepted->new_qd, client_qd};
}

// One echo round trip; returns the string the client got back.
std::string EchoOnce(LibOS& server, QDesc server_qd, LibOS& client, QDesc client_qd,
                     const std::string& msg) {
  auto pop_at_server = server.Pop(server_qd);
  EXPECT_TRUE(pop_at_server.ok());
  auto push = client.BlockingPush(client_qd, Sga(msg));
  EXPECT_TRUE(push.ok());
  auto req = server.Wait(*pop_at_server, 10 * kSecond);
  EXPECT_TRUE(req.ok());
  EXPECT_TRUE(req->status.ok());
  auto reply_push = server.BlockingPush(server_qd, req->sga);
  EXPECT_TRUE(reply_push.ok());
  auto reply = client.BlockingPop(client_qd);
  EXPECT_TRUE(reply.ok());
  EXPECT_TRUE(reply->status.ok());
  return reply->sga.ToString();
}

// --- Catnip ---

TEST(CatnipTest, EchoRoundTrip) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  EXPECT_EQ(EchoOnce(server, sqd, client, cqd, "catnip echo"), "catnip echo");
}

TEST(CatnipTest, DataPathIsZeroCopy) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  (void)EchoOnce(server, sqd, client, cqd, "warmup");

  const std::uint64_t copies_before = h.sim().counters().Get(Counter::kBytesCopied);
  const std::uint64_t syscalls_before = h.sim().counters().Get(Counter::kSyscalls);
  SgArray big = client.SgaAlloc(8192);
  std::memset(big.segment(0).mutable_data(), 'z', 8192);
  auto pop_tok = server.Pop(sqd);
  ASSERT_TRUE(pop_tok.ok());
  ASSERT_TRUE(client.BlockingPush(cqd, big).ok());
  auto got = server.Wait(*pop_tok, 10 * kSecond);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->sga.total_bytes(), 8192u);
  // §3.1/§3.2: no kernel crossings and no copies anywhere on the data path.
  EXPECT_EQ(h.sim().counters().Get(Counter::kBytesCopied), copies_before);
  EXPECT_EQ(h.sim().counters().Get(Counter::kSyscalls), syscalls_before);
}

TEST(CatnipTest, SteadyStateTxAllocatesOnlyPooledHeaders) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  // Warm up: grows the header pool and settles ARP/window state.
  for (int i = 0; i < 4; ++i) {
    (void)EchoOnce(server, sqd, client, cqd, "warmup");
  }

  const std::uint64_t copied_before = h.sim().counters().Get(Counter::kBytesCopied);
  const std::uint64_t allocs_before = h.sim().counters().Get(Counter::kBufferAllocs);
  const std::uint64_t hits_before = h.sim().counters().Get(Counter::kHeaderPoolHits);
  const std::uint64_t misses_before = h.sim().counters().Get(Counter::kHeaderPoolMisses);

  SgArray payload = client.SgaAlloc(1024);
  std::memset(payload.segment(0).mutable_data(), 'p', 1024);
  auto pop_tok = server.Pop(sqd);
  ASSERT_TRUE(pop_tok.ok());
  ASSERT_TRUE(client.BlockingPush(cqd, payload).ok());
  auto got = server.Wait(*pop_tok, 10 * kSecond);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->sga.total_bytes(), 1024u);

  // Zero payload bytes copied on the TX path: the payload buffer rides to the NIC by
  // reference, and the only allocations the transmit performed are protocol headers —
  // every one served from the pre-registered header pool (steady state: no misses).
  EXPECT_EQ(h.sim().counters().Get(Counter::kBytesCopied), copied_before);
  const std::uint64_t allocs = h.sim().counters().Get(Counter::kBufferAllocs) - allocs_before;
  const std::uint64_t hits = h.sim().counters().Get(Counter::kHeaderPoolHits) - hits_before;
  EXPECT_EQ(h.sim().counters().Get(Counter::kHeaderPoolMisses), misses_before);
  EXPECT_GE(hits, 1u);  // the data segment's eth+ip and tcp headers came from the pool
  // Each kBufferAllocs on TX is a pooled header; RX-side pop buffers account for the
  // rest. No per-byte payload allocation slipped in: alloc count is far below payload
  // size and independent of it.
  EXPECT_LE(allocs, 16u);
}

TEST(CatnipTest, ElementBoundariesSurviveSegmentation) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);

  // 10 KB element: spans many TCP segments but must pop as ONE unit (§4.2).
  std::string big(10000, 'q');
  big[0] = 'A';
  big[9999] = 'Z';
  auto pop_tok = server.Pop(sqd);
  ASSERT_TRUE(pop_tok.ok());
  ASSERT_TRUE(client.BlockingPush(cqd, Sga(big)).ok());
  auto got = server.Wait(*pop_tok, 10 * kSecond);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->sga.total_bytes(), 10000u);
  EXPECT_EQ(got->sga.ToString(), big);
}

TEST(CatnipTest, BackToBackElementsKeepBoundaries) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  for (int i = 0; i < 20; ++i) {
    (void)client.Push(cqd, Sga("msg-" + std::to_string(i)));
  }
  for (int i = 0; i < 20; ++i) {
    auto r = server.BlockingPop(sqd);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->sga.ToString(), "msg-" + std::to_string(i));
  }
}

TEST(CatnipTest, ConnectRefusedSurfacesError) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  (void)h.Catnip(sh);  // server libOS exists but listens nowhere
  auto& client = h.Catnip(ch);
  const QDesc qd = *client.Socket();
  auto token = client.ConnectAsync(qd, Endpoint{sh.ip, 12345});
  ASSERT_TRUE(token.ok());
  auto r = client.Wait(*token, 30 * kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->status.ok());
}

TEST(CatnipTest, CloseDeliversEofToPeerPop) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  auto pop_tok = server.Pop(sqd);
  ASSERT_TRUE(pop_tok.ok());
  ASSERT_TRUE(client.Close(cqd).ok());
  auto r = server.Wait(*pop_tok, 10 * kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kEndOfFile);
}

TEST(CatnipTest, UdpDatagramIsOneElement) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);

  const QDesc srv = *server.SocketUdp();
  ASSERT_TRUE(server.Bind(srv, 5000).ok());
  const QDesc cli = *client.SocketUdp();
  ASSERT_TRUE(client.Connect(cli, Endpoint{sh.ip, 5000}).ok());

  auto pop_tok = server.Pop(srv);
  ASSERT_TRUE(pop_tok.ok());
  ASSERT_TRUE(client.BlockingPush(cli, Sga("datagram payload")).ok());
  auto r = server.Wait(*pop_tok, 10 * kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sga.ToString(), "datagram payload");
}

// --- Catnap ---

TEST(CatnapTest, EchoRoundTrip) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnap(sh);
  auto& client = h.Catnap(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  EXPECT_EQ(EchoOnce(server, sqd, client, cqd, "catnap echo"), "catnap echo");
}

TEST(CatnapTest, DataPathPaysSyscallsAndCopies) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnap(sh);
  auto& client = h.Catnap(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  const std::uint64_t copies_before = h.sim().counters().Get(Counter::kBytesCopied);
  const std::uint64_t syscalls_before = h.sim().counters().Get(Counter::kSyscalls);
  (void)EchoOnce(server, sqd, client, cqd, std::string(4096, 'c'));
  // The portability libOS keeps the app unchanged but pays the traditional tax.
  EXPECT_GT(h.sim().counters().Get(Counter::kBytesCopied), copies_before + 8000);
  EXPECT_GT(h.sim().counters().Get(Counter::kSyscalls), syscalls_before);
}

// --- interop: same application protocol across libOSes (§5.2 framing) ---

TEST(InteropTest, CatnapClientTalksToCatnipServer) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnap(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  EXPECT_EQ(EchoOnce(server, sqd, client, cqd, "mixed stacks"), "mixed stacks");
}

TEST(InteropTest, CatnipClientTalksToCatnapServer) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnap(sh);
  auto& client = h.Catnip(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  EXPECT_EQ(EchoOnce(server, sqd, client, cqd, "other direction"), "other direction");
}

// --- Catmint ---

TEST(CatmintTest, EchoRoundTrip) {
  TestHarness h;
  HostOptions rdma_opts;
  rdma_opts.with_rdma = true;
  rdma_opts.with_nic = false;
  rdma_opts.with_kernel = false;
  auto& sh = h.AddHost("server", "10.0.0.1", rdma_opts);
  auto& ch = h.AddHost("client", "10.0.0.2", rdma_opts);
  auto& server = h.Catmint(sh);
  auto& client = h.Catmint(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  EXPECT_EQ(EchoOnce(server, sqd, client, cqd, "rdma echo"), "rdma echo");
}

TEST(CatmintTest, TransparentRegistrationNeedsNoUserCalls) {
  TestHarness h;
  HostOptions rdma_opts;
  rdma_opts.with_rdma = true;
  rdma_opts.with_nic = false;
  rdma_opts.with_kernel = false;
  auto& sh = h.AddHost("server", "10.0.0.1", rdma_opts);
  auto& ch = h.AddHost("client", "10.0.0.2", rdma_opts);
  auto& server = h.Catmint(sh);
  auto& client = h.Catmint(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);

  // Buffers from sgaalloc are usable for RDMA without any registration call, and the
  // data path copies nothing.
  SgArray sga = client.SgaAlloc(2048);
  std::memset(sga.segment(0).mutable_data(), 'r', 2048);
  const std::uint64_t copies_before = h.sim().counters().Get(Counter::kBytesCopied);
  auto pop_tok = server.Pop(sqd);
  ASSERT_TRUE(pop_tok.ok());
  ASSERT_TRUE(client.BlockingPush(cqd, sga).ok());
  auto r = server.Wait(*pop_tok, 10 * kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sga.total_bytes(), 2048u);
  EXPECT_EQ(h.sim().counters().Get(Counter::kBytesCopied), copies_before);
}

TEST(CatmintTest, ForeignBuffersAreBouncedWithACopy) {
  TestHarness h;
  HostOptions rdma_opts;
  rdma_opts.with_rdma = true;
  rdma_opts.with_nic = false;
  rdma_opts.with_kernel = false;
  auto& sh = h.AddHost("server", "10.0.0.1", rdma_opts);
  auto& ch = h.AddHost("client", "10.0.0.2", rdma_opts);
  auto& server = h.Catmint(sh);
  auto& client = h.Catmint(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);

  const std::uint64_t copies_before = h.sim().counters().Get(Counter::kBytesCopied);
  auto pop_tok = server.Pop(sqd);
  ASSERT_TRUE(pop_tok.ok());
  // Sga("...") copies into plain heap memory — NOT from the manager — so the libOS
  // must stage it into registered memory, paying one copy.
  ASSERT_TRUE(client.BlockingPush(cqd, Sga("foreign memory")).ok());
  auto r = server.Wait(*pop_tok, 10 * kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sga.ToString(), "foreign memory");
  EXPECT_GT(h.sim().counters().Get(Counter::kBytesCopied), copies_before);
}

TEST(CatmintTest, OversizedElementRejected) {
  TestHarness h;
  HostOptions rdma_opts;
  rdma_opts.with_rdma = true;
  rdma_opts.with_nic = false;
  rdma_opts.with_kernel = false;
  auto& sh = h.AddHost("server", "10.0.0.1", rdma_opts);
  auto& ch = h.AddHost("client", "10.0.0.2", rdma_opts);
  auto& server = h.Catmint(sh);
  auto& client = h.Catmint(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  SgArray huge = client.SgaAlloc(64 * 1024);  // > max_element_bytes (16 KB)
  EXPECT_EQ(client.Push(cqd, huge).code(), ErrorCode::kInvalidArgument);
}

TEST(CatmintTest, ManyMessagesNoRnrFailures) {
  TestHarness h;
  HostOptions rdma_opts;
  rdma_opts.with_rdma = true;
  rdma_opts.with_nic = false;
  rdma_opts.with_kernel = false;
  auto& sh = h.AddHost("server", "10.0.0.1", rdma_opts);
  auto& ch = h.AddHost("client", "10.0.0.2", rdma_opts);
  auto& server = h.Catmint(sh);
  auto& client = h.Catmint(ch);
  auto [sqd, cqd] = ConnectPair(h, server, client, sh.ip);
  // Blast 500 messages while popping: the libOS's buffer provisioning (§2's missing
  // piece) must keep the hardware fed with receives throughout.
  int received = 0;
  int sent = 0;
  std::vector<QToken> pops;
  while (received < 500) {
    while (sent < 500) {
      auto t = client.Push(cqd, Sga("m" + std::to_string(sent)));
      if (!t.ok()) {
        break;
      }
      ++sent;
    }
    auto r = server.BlockingPop(sqd);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->status.ok()) << r->status << " after " << received;
    ++received;
  }
  EXPECT_EQ(received, 500);
}

}  // namespace
}  // namespace demi
