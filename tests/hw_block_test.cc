// Tests for the SPDK-style block device: SQ/CQ semantics, data integrity, flush
// barriers, queue-depth backpressure, and timing against the cost model.

#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/common/random.h"
#include "src/hw/block_device.h"

namespace demi {
namespace {

struct BlockRig {
  BlockRig() : sim(), host(&sim, "storage"), dev(&host) {}
  explicit BlockRig(BlockDeviceConfig cfg) : sim(), host(&sim, "storage"), dev(&host, cfg) {}

  // Runs until a completion with `id` arrives; returns its status.
  Status WaitFor(std::uint64_t id) {
    Status out = Internal("never completed");
    const bool done = sim.RunUntil(
        [&] {
          for (const auto& c : dev.PollCompletions()) {
            if (c.id == id) {
              out = c.status;
              return true;
            }
          }
          return false;
        },
        kSecond);
    EXPECT_TRUE(done);
    return out;
  }

  Simulation sim;
  HostCpu host;
  BlockDevice dev;
};

Buffer BlockOf(char fill, std::size_t n = 4096) {
  Buffer b = Buffer::Allocate(n);
  std::memset(b.mutable_data(), fill, n);
  return b;
}

TEST(BlockDeviceTest, WriteThenReadRoundTrip) {
  BlockRig rig;
  ASSERT_TRUE(rig.dev.SubmitWrite(1, 10, BlockOf('A')).ok());
  EXPECT_TRUE(rig.WaitFor(1).ok());

  Buffer dest = Buffer::Allocate(4096);
  ASSERT_TRUE(rig.dev.SubmitRead(2, 10, 1, dest).ok());
  EXPECT_TRUE(rig.WaitFor(2).ok());
  EXPECT_EQ(std::to_integer<char>(dest.span()[0]), 'A');
  EXPECT_EQ(std::to_integer<char>(dest.span()[4095]), 'A');
}

TEST(BlockDeviceTest, UnwrittenBlocksReadAsZero) {
  BlockRig rig;
  Buffer dest = BlockOf('x');
  ASSERT_TRUE(rig.dev.SubmitRead(1, 999, 1, dest).ok());
  EXPECT_TRUE(rig.WaitFor(1).ok());
  EXPECT_EQ(std::to_integer<int>(dest.span()[0]), 0);
}

TEST(BlockDeviceTest, MultiBlockWriteAndRead) {
  BlockRig rig;
  Buffer data = Buffer::Allocate(3 * 4096);
  for (int i = 0; i < 3; ++i) {
    std::memset(data.mutable_data() + i * 4096, 'a' + i, 4096);
  }
  ASSERT_TRUE(rig.dev.SubmitWrite(1, 100, data).ok());
  EXPECT_TRUE(rig.WaitFor(1).ok());

  Buffer dest = Buffer::Allocate(3 * 4096);
  ASSERT_TRUE(rig.dev.SubmitRead(2, 100, 3, dest).ok());
  EXPECT_TRUE(rig.WaitFor(2).ok());
  EXPECT_EQ(std::to_integer<char>(dest.span()[0]), 'a');
  EXPECT_EQ(std::to_integer<char>(dest.span()[4096]), 'b');
  EXPECT_EQ(std::to_integer<char>(dest.span()[2 * 4096]), 'c');
}

TEST(BlockDeviceTest, RejectsPartialBlockWrite) {
  BlockRig rig;
  EXPECT_EQ(rig.dev.SubmitWrite(1, 0, Buffer::Allocate(100)).code(),
            ErrorCode::kInvalidArgument);
}

TEST(BlockDeviceTest, RejectsOutOfRangeAccess) {
  BlockRig rig;
  const std::uint64_t last = rig.dev.num_blocks();
  EXPECT_EQ(rig.dev.SubmitWrite(1, last, BlockOf('z')).code(), ErrorCode::kInvalidArgument);
  Buffer dest = Buffer::Allocate(4096);
  EXPECT_EQ(rig.dev.SubmitRead(2, last, 1, dest).code(), ErrorCode::kInvalidArgument);
}

TEST(BlockDeviceTest, RejectsMismatchedReadBuffer) {
  BlockRig rig;
  Buffer small = Buffer::Allocate(100);
  EXPECT_EQ(rig.dev.SubmitRead(1, 0, 1, small).code(), ErrorCode::kInvalidArgument);
}

TEST(BlockDeviceTest, QueueDepthBackpressure) {
  BlockDeviceConfig cfg;
  cfg.queue_depth = 2;
  BlockRig rig(cfg);
  ASSERT_TRUE(rig.dev.SubmitWrite(1, 0, BlockOf('a')).ok());
  ASSERT_TRUE(rig.dev.SubmitWrite(2, 1, BlockOf('b')).ok());
  EXPECT_EQ(rig.dev.SubmitWrite(3, 2, BlockOf('c')).code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(rig.WaitFor(2).ok());
  EXPECT_TRUE(rig.dev.SubmitWrite(3, 2, BlockOf('c')).ok());
}

TEST(BlockDeviceTest, ReadLatencyFollowsCostModel) {
  BlockRig rig;
  Buffer dest = Buffer::Allocate(4096);
  const TimeNs start = rig.sim.now();
  ASSERT_TRUE(rig.dev.SubmitRead(1, 0, 1, dest).ok());
  ASSERT_TRUE(rig.WaitFor(1).ok());
  const TimeNs elapsed = rig.sim.now() - start;
  const TimeNs expected = rig.sim.cost().NvmeNs(false, 4096);
  EXPECT_GE(elapsed, expected);
  EXPECT_LT(elapsed, expected + 2 * kMicrosecond);
}

TEST(BlockDeviceTest, WritesAreFasterThanReads) {
  const CostModel cost;
  EXPECT_LT(cost.NvmeNs(true, 4096), cost.NvmeNs(false, 4096));
}

TEST(BlockDeviceTest, FlushCompletesAfterPriorWrites) {
  BlockRig rig;
  ASSERT_TRUE(rig.dev.SubmitWrite(1, 0, BlockOf('a')).ok());
  ASSERT_TRUE(rig.dev.SubmitFlush(2).ok());
  bool write_done = false, flush_done = false;
  TimeNs write_time = 0, flush_time = 0;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        for (const auto& c : rig.dev.PollCompletions()) {
          if (c.id == 1) {
            write_done = true;
            write_time = rig.sim.now();
          }
          if (c.id == 2) {
            flush_done = true;
            flush_time = rig.sim.now();
          }
        }
        return write_done && flush_done;
      },
      kSecond));
  EXPECT_GE(flush_time, write_time);
}

TEST(BlockDeviceTest, CapsReportKernelBypass) {
  BlockRig rig;
  EXPECT_TRUE(rig.dev.caps().kernel_bypass);
  EXPECT_FALSE(rig.dev.caps().transport_offload);
}

// Property sweep: random write/read patterns preserve data for several seeds.
class BlockFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockFuzzTest, RandomWritesReadBackCorrectly) {
  BlockRig rig;
  Rng rng(GetParam());
  std::map<std::uint64_t, char> expected;
  std::uint64_t next_id = 1;
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t lba = rng.NextBelow(64);
    const char fill = static_cast<char>('a' + rng.NextBelow(26));
    const std::uint64_t id = next_id++;
    ASSERT_TRUE(rig.dev.SubmitWrite(id, lba, BlockOf(fill)).ok());
    ASSERT_TRUE(rig.WaitFor(id).ok());
    expected[lba] = fill;
  }
  for (const auto& [lba, fill] : expected) {
    Buffer dest = Buffer::Allocate(4096);
    const std::uint64_t id = next_id++;
    ASSERT_TRUE(rig.dev.SubmitRead(id, lba, 1, dest).ok());
    ASSERT_TRUE(rig.WaitFor(id).ok());
    EXPECT_EQ(std::to_integer<char>(dest.span()[0]), fill) << "lba " << lba;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockFuzzTest, ::testing::Values(1, 2, 3, 4));

// Regression: SubmitFlush used to skip the per-op fault consult, so a seeded fault
// aimed at a flush silently slid onto the next read/write — breaking chaos-schedule
// determinism. A flush must absorb the armed fault like any other op.
TEST(BlockDeviceTest, FlushConsultsFaultInjector) {
  BlockRig rig;
  FaultInjector inj(&rig.sim, /*seed=*/7);
  rig.dev.AttachFaultInjector(&inj);

  ASSERT_TRUE(rig.dev.SubmitWrite(1, 5, BlockOf('w')).ok());
  EXPECT_TRUE(rig.WaitFor(1).ok());

  inj.ScheduleOpFault(rig.dev.fault_device(), FaultKind::kMediaError, rig.sim.now());
  rig.sim.RunFor(kMicrosecond);
  ASSERT_TRUE(rig.dev.SubmitFlush(2).ok());
  EXPECT_EQ(rig.WaitFor(2).code(), ErrorCode::kMediaError);

  // The fault was one-shot and consumed by the flush: the next flush is clean, and a
  // read right after sees the durable data.
  ASSERT_TRUE(rig.dev.SubmitFlush(3).ok());
  EXPECT_TRUE(rig.WaitFor(3).ok());
  Buffer dest = Buffer::Allocate(4096);
  ASSERT_TRUE(rig.dev.SubmitRead(4, 5, 1, dest).ok());
  EXPECT_TRUE(rig.WaitFor(4).ok());
  EXPECT_EQ(std::to_integer<char>(dest.span()[0]), 'w');
}

}  // namespace
}  // namespace demi
