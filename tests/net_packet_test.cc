// Tests for wire formats: address parsing, header round-trips, checksum behaviour,
// corruption detection, and full-frame construction.

#include <gtest/gtest.h>

#include "src/net/packet.h"

namespace demi {
namespace {

TEST(Ipv4AddressTest, ParseAndFormatRoundTrip) {
  const Ipv4Address a = Ipv4Address::Parse("10.0.0.1");
  EXPECT_EQ(a.ToString(), "10.0.0.1");
  EXPECT_EQ(a.addr, 0x0A000001u);
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255").ToString(), "255.255.255.255");
}

TEST(Ipv4AddressTest, MalformedParsesToZero) {
  EXPECT_EQ(Ipv4Address::Parse("not an ip").addr, 0u);
  EXPECT_EQ(Ipv4Address::Parse("300.1.1.1").addr, 0u);
}

TEST(EthHeaderTest, RoundTrip) {
  Buffer b = Buffer::Allocate(kEthHeaderSize);
  const EthHeader in{MacAddress::ForHost(7), MacAddress::ForHost(9), kEtherTypeIpv4};
  WriteEthHeader(b.mutable_span(), in);
  const EthHeader out = ParseEthHeader(b.span());
  EXPECT_EQ(out.dst, in.dst);
  EXPECT_EQ(out.src, in.src);
  EXPECT_EQ(out.ethertype, kEtherTypeIpv4);
}

TEST(Ipv4HeaderTest, RoundTrip) {
  Buffer b = Buffer::Allocate(1500);  // header + payload space: total_length must fit
  Ipv4Header in;
  in.protocol = kIpProtoTcp;
  in.total_length = 1500;
  in.src = Ipv4Address::Parse("10.0.0.1");
  in.dst = Ipv4Address::Parse("10.0.0.2");
  WriteIpv4Header(b.mutable_span(), in);
  auto out = ParseIpv4Header(b.span());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->protocol, kIpProtoTcp);
  EXPECT_EQ(out->total_length, 1500);
  EXPECT_EQ(out->src, in.src);
  EXPECT_EQ(out->dst, in.dst);
}

TEST(Ipv4HeaderTest, ChecksumCorruptionDetected) {
  Buffer b = Buffer::Allocate(kIpv4HeaderSize);
  Ipv4Header in;
  in.protocol = kIpProtoUdp;
  in.total_length = 100;
  in.src = Ipv4Address::Parse("1.2.3.4");
  in.dst = Ipv4Address::Parse("5.6.7.8");
  WriteIpv4Header(b.mutable_span(), in);
  b.mutable_data()[15] ^= std::byte{0x40};  // flip a bit in the source address
  EXPECT_FALSE(ParseIpv4Header(b.span()).has_value());
}

TEST(Ipv4HeaderTest, TruncatedRejected) {
  Buffer b = Buffer::Allocate(10);
  EXPECT_FALSE(ParseIpv4Header(b.span()).has_value());
}

TEST(UdpHeaderTest, RoundTrip) {
  Buffer b = Buffer::Allocate(58);  // length covers header + payload
  WriteUdpHeader(b.mutable_span(), UdpHeader{5353, 80, 58});
  auto out = ParseUdpHeader(b.span());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->src_port, 5353);
  EXPECT_EQ(out->dst_port, 80);
  EXPECT_EQ(out->length, 58);
}

TEST(TcpHeaderTest, RoundTripWithChecksum) {
  const Ipv4Address src = Ipv4Address::Parse("10.0.0.1");
  const Ipv4Address dst = Ipv4Address::Parse("10.0.0.2");
  Buffer payload = Buffer::CopyOf("segment payload");
  Buffer seg = Buffer::Allocate(kTcpHeaderSize + payload.size());
  std::memcpy(seg.mutable_data() + kTcpHeaderSize, payload.data(), payload.size());

  TcpHeader in;
  in.src_port = 49152;
  in.dst_port = 7000;
  in.seq = 0xDEADBEEF;
  in.ack = 0x01020304;
  in.flags = kTcpAck | kTcpPsh;
  in.window = 65535;
  WriteTcpHeader(seg.mutable_span(), in, src, dst, seg.span().subspan(kTcpHeaderSize));

  EXPECT_TRUE(VerifyTcpChecksum(seg.span(), src, dst));
  auto out = ParseTcpHeader(seg.span());
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->src_port, in.src_port);
  EXPECT_EQ(out->dst_port, in.dst_port);
  EXPECT_EQ(out->seq, in.seq);
  EXPECT_EQ(out->ack, in.ack);
  EXPECT_EQ(out->flags, in.flags);
  EXPECT_EQ(out->window, in.window);
}

TEST(TcpHeaderTest, PayloadCorruptionFailsChecksum) {
  const Ipv4Address src = Ipv4Address::Parse("10.0.0.1");
  const Ipv4Address dst = Ipv4Address::Parse("10.0.0.2");
  Buffer seg = Buffer::Allocate(kTcpHeaderSize + 4);
  const char kPayload[] = {'d', 'a', 't', 'a'};
  std::copy_n(kPayload, 4, reinterpret_cast<char*>(seg.mutable_data()) + kTcpHeaderSize);
  WriteTcpHeader(seg.mutable_span(), TcpHeader{1, 2, 3, 4, kTcpAck, 100}, src, dst,
                 seg.span().subspan(kTcpHeaderSize));
  seg.mutable_data()[kTcpHeaderSize] = std::byte{'X'};
  EXPECT_FALSE(VerifyTcpChecksum(seg.span(), src, dst));
}

TEST(TcpHeaderTest, WrongAddressPairFailsChecksum) {
  const Ipv4Address src = Ipv4Address::Parse("10.0.0.1");
  const Ipv4Address dst = Ipv4Address::Parse("10.0.0.2");
  Buffer seg = Buffer::Allocate(kTcpHeaderSize);
  WriteTcpHeader(seg.mutable_span(), TcpHeader{1, 2, 3, 4, kTcpSyn, 100}, src, dst, {});
  EXPECT_TRUE(VerifyTcpChecksum(seg.span(), src, dst));
  EXPECT_FALSE(VerifyTcpChecksum(seg.span(), src, Ipv4Address::Parse("10.0.0.3")));
}

TEST(ArpPacketTest, RequestRoundTrip) {
  Buffer b = Buffer::Allocate(kArpPacketSize);
  ArpPacket in;
  in.is_request = true;
  in.sender_mac = MacAddress::ForHost(1);
  in.sender_ip = Ipv4Address::Parse("10.0.0.1");
  in.target_ip = Ipv4Address::Parse("10.0.0.2");
  WriteArpPacket(b.mutable_span(), in);
  auto out = ParseArpPacket(b.span());
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->is_request);
  EXPECT_EQ(out->sender_mac, in.sender_mac);
  EXPECT_EQ(out->sender_ip, in.sender_ip);
  EXPECT_EQ(out->target_ip, in.target_ip);
}

TEST(ArpPacketTest, GarbageRejected) {
  Buffer b = Buffer::Allocate(kArpPacketSize);
  std::memset(b.mutable_data(), 0xFF, b.size());
  EXPECT_FALSE(ParseArpPacket(b.span()).has_value());
}

TEST(FrameBuildTest, Ipv4FrameLayout) {
  Ipv4Header ip;
  ip.protocol = kIpProtoUdp;
  ip.src = Ipv4Address::Parse("10.0.0.1");
  ip.dst = Ipv4Address::Parse("10.0.0.2");
  const Buffer parts[] = {Buffer::CopyOf("hello")};
  Buffer frame =
      BuildIpv4Frame(MacAddress::ForHost(1), MacAddress::ForHost(2), ip, parts);
  ASSERT_EQ(frame.size(), kEthHeaderSize + kIpv4HeaderSize + 5);
  const EthHeader eth = ParseEthHeader(frame.span());
  EXPECT_EQ(eth.ethertype, kEtherTypeIpv4);
  auto parsed = ParseIpv4Header(frame.span().subspan(kEthHeaderSize));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total_length, kIpv4HeaderSize + 5);
  EXPECT_EQ(frame.Slice(kEthHeaderSize + kIpv4HeaderSize).AsStringView(), "hello");
}

TEST(MacAddressTest, ForHostIsDeterministicAndUnique) {
  EXPECT_EQ(MacAddress::ForHost(5), MacAddress::ForHost(5));
  EXPECT_FALSE(MacAddress::ForHost(5) == MacAddress::ForHost(6));
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_FALSE(MacAddress::ForHost(5).IsBroadcast());
}

}  // namespace
}  // namespace demi
