// Tests for the open-loop load harness (src/load): deterministic replay,
// Zipfian key-popularity shape, churn accounting, and intended-send-time
// (coordinated-omission-free) latency measurement.

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/load/open_loop_runner.h"
#include "src/load/workload.h"
#include "src/sim/time.h"

namespace demi {
namespace {

OpenLoopConfig SmallConfig() {
  OpenLoopConfig cfg;
  cfg.connections = 512;
  cfg.client_stacks = 2;
  cfg.server_ports = 8;
  cfg.ramp_batch = 256;
  cfg.seed = 7;
  return cfg;
}

TEST(OpenLoopRamp, EstablishesAndAcceptsEveryConnection) {
  OpenLoopConfig cfg = SmallConfig();
  cfg.connections = 4096;
  OpenLoopRunner r(cfg);
  ASSERT_TRUE(r.Ramp());
  EXPECT_EQ(r.established_connections(), cfg.connections);
  EXPECT_EQ(r.accepted_connections(), cfg.connections);
  EXPECT_EQ(r.unexpected_deaths(), 0u);
}

// Everything random in the harness draws from seeded generators, so two runs
// with the same config must produce the same arrival sequence, the same
// completions, and the same latency distribution — bit for bit.
struct RunDigest {
  std::uint64_t issued;
  std::uint64_t completed;
  std::uint64_t served;
  std::uint64_t churned;
  std::uint64_t flips;
  std::uint64_t lat_count;
  std::uint64_t lat_p50;
  std::uint64_t lat_p99;
  std::uint64_t lat_max;
  TimeNs end_clock;
  std::vector<TimeNs> first_intents;  // first 64 (intended, completed) pairs

  bool operator==(const RunDigest&) const = default;
};

RunDigest RunOnce(std::uint64_t seed) {
  OpenLoopConfig cfg = SmallConfig();
  cfg.seed = seed;
  cfg.workload.kind = WorkloadKind::kKv;
  cfg.arrival.process = ArrivalConfig::Process::kMmpp;
  cfg.churn_per_sec = 2000;
  cfg.incast_fanin = 32;
  cfg.incast_period_ns = 2 * kMillisecond;
  OpenLoopRunner r(cfg);

  RunDigest d{};
  r.set_completion_probe([&](TimeNs intended, TimeNs completed) {
    if (d.first_intents.size() < 64) {
      d.first_intents.push_back(intended);
      d.first_intents.push_back(completed);
    }
  });
  EXPECT_TRUE(r.Ramp());
  const SweepPoint pt = r.RunPoint(40'000, 2 * kMillisecond, 10 * kMillisecond);
  d.issued = r.issued_total();
  d.completed = r.completed_total();
  d.served = r.served_total();
  d.churned = r.churn_completed();
  d.flips = r.phase_flips();
  d.lat_count = pt.latency.count;
  d.lat_p50 = pt.latency.p50;
  d.lat_p99 = pt.latency.p99;
  d.lat_max = pt.latency.max;
  d.end_clock = r.sim().now();
  return d;
}

TEST(OpenLoopDeterminism, SameSeedSameRunBitForBit) {
  const RunDigest a = RunOnce(42);
  const RunDigest b = RunOnce(42);
  EXPECT_GT(a.issued, 0u);
  EXPECT_GT(a.completed, 0u);
  EXPECT_EQ(a, b);
}

TEST(OpenLoopDeterminism, DifferentSeedDiverges) {
  const RunDigest a = RunOnce(42);
  const RunDigest c = RunOnce(43);
  EXPECT_NE(a, c);
}

// The Zipf sampler must actually produce the configured skew: rank-k popularity
// proportional to 1/k^theta. Checked against the exact normalization constant.
TEST(OpenLoopWorkload, ZipfKeyFrequenciesMatchConfiguredSkew) {
  constexpr std::uint64_t kKeys = 1024;
  constexpr double kTheta = 0.99;
  constexpr std::uint64_t kSamples = 400'000;
  WorkloadConfig wcfg;
  wcfg.kind = WorkloadKind::kKv;
  wcfg.kv_keys = kKeys;
  wcfg.zipf_theta = kTheta;
  WorkloadModel model(wcfg);
  Rng rng(123);

  std::map<std::uint64_t, std::uint64_t> freq;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    const std::uint64_t key = model.SampleKey(rng);
    ASSERT_LT(key, kKeys);
    ++freq[key];
  }

  double zetan = 0;
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    zetan += 1.0 / std::pow(static_cast<double>(k), kTheta);
  }
  // Gray et al. samplers emit rank r as key r (0 = hottest) and compute the two
  // hottest ranks exactly; ranks beyond that come from a continuous
  // approximation. Check ranks 1-2 against exact theory, then shape properties.
  for (std::uint64_t rank = 1; rank <= 2; ++rank) {
    const double expect = 1.0 / (std::pow(static_cast<double>(rank), kTheta) * zetan);
    const double got = static_cast<double>(freq[rank - 1]) / kSamples;
    EXPECT_NEAR(got, expect, expect * 0.10)
        << "rank " << rank << " expected " << expect << " got " << got;
  }
  // Popularity decays with rank (gaps wide enough to swamp sampling noise).
  EXPECT_GT(freq[0], freq[3]);
  EXPECT_GT(freq[3], freq[15]);
  EXPECT_GT(freq[15], freq[63]);
  EXPECT_GT(freq[63], freq[255]);
  // Head mass matches the configured skew: the top 16 of 1024 keys should carry
  // zeta_16/zeta_n of the traffic (approximation + sampling tolerance).
  double zeta16 = 0;
  for (std::uint64_t k = 1; k <= 16; ++k) {
    zeta16 += 1.0 / std::pow(static_cast<double>(k), kTheta);
  }
  std::uint64_t head = 0;
  for (std::uint64_t k = 0; k < 16; ++k) {
    head += freq[k];
  }
  const double head_expect = zeta16 / zetan;
  EXPECT_NEAR(static_cast<double>(head) / kSamples, head_expect, head_expect * 0.15);
}

TEST(OpenLoopWorkload, ZipfThetaZeroIsUniform) {
  constexpr std::uint64_t kKeys = 64;
  WorkloadConfig wcfg;
  wcfg.kv_keys = kKeys;
  wcfg.zipf_theta = 0.0;
  WorkloadModel model(wcfg);
  Rng rng(5);
  std::vector<std::uint64_t> freq(kKeys, 0);
  constexpr std::uint64_t kSamples = 128'000;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    ++freq[model.SampleKey(rng)];
  }
  const double uniform = static_cast<double>(kSamples) / kKeys;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_NEAR(static_cast<double>(freq[k]), uniform, uniform * 0.25) << "key " << k;
  }
}

// Churn must close each victim exactly once (the `closing` latch) and replace it
// with a fresh connection: after the load stops and reconnects drain, the fleet
// is fully re-established and every initiated close produced exactly one cycle.
TEST(OpenLoopChurn, NeverDoubleClosesAndFleetRecovers) {
  OpenLoopConfig cfg = SmallConfig();
  cfg.connections = 1024;
  cfg.churn_per_sec = 50'000;  // ~500 closes over the 10ms point: heavy churn
  OpenLoopRunner r(cfg);
  ASSERT_TRUE(r.Ramp());
  r.RunPoint(20'000, 1 * kMillisecond, 10 * kMillisecond);
  r.StopLoad();
  // Drain in-flight closes and reconnects.
  r.sim().RunUntil(
      [&] {
        return r.churn_completed() == r.churn_initiated() &&
               r.established_connections() == cfg.connections;
      },
      r.sim().now() + 5 * kSecond);

  EXPECT_GT(r.churn_initiated(), 100u);
  // Exactly one completed cycle per initiated close — a double Close() on one
  // victim would either crash or leave these counters unequal.
  EXPECT_EQ(r.churn_completed(), r.churn_initiated());
  EXPECT_EQ(r.established_connections(), cfg.connections);
  EXPECT_EQ(r.unexpected_deaths(), 0u);
}

// Intended-send-time accounting, against a hand-computed schedule: with Poisson
// arrivals off and a 1-connection incast firing every P ns, request k's intended
// time is exactly t_start + (k+1)*P no matter when the bytes moved or completed.
TEST(OpenLoopLatency, IntendedSendTimesMatchHandComputedSchedule) {
  OpenLoopConfig cfg;
  cfg.connections = 1;
  cfg.client_stacks = 1;
  cfg.server_ports = 1;
  cfg.ramp_batch = 1;
  cfg.incast_fanin = 1;
  cfg.incast_period_ns = 500 * kMicrosecond;
  OpenLoopRunner r(cfg);
  ASSERT_TRUE(r.Ramp());

  std::vector<TimeNs> intents;
  std::vector<TimeNs> completions;
  r.set_completion_probe([&](TimeNs intended, TimeNs completed) {
    intents.push_back(intended);
    completions.push_back(completed);
  });
  const TimeNs t_start = r.sim().now();
  r.RunPoint(/*offered_rps=*/0, /*warmup=*/0, /*measure=*/10 * kMillisecond);
  r.StopLoad();
  // Drain the request issued at the tail of the window.
  r.sim().RunUntil([&] { return r.completed_total() == r.issued_total(); },
                   r.sim().now() + 1 * kSecond);

  ASSERT_GE(intents.size(), 16u);
  for (std::size_t k = 0; k < intents.size(); ++k) {
    // The incast timer self-reschedules from its own fire time, so intended
    // times form an exact arithmetic sequence.
    EXPECT_EQ(intents[k], t_start + static_cast<TimeNs>(k + 1) * cfg.incast_period_ns)
        << "request " << k;
    EXPECT_GT(completions[k], intents[k]) << "request " << k;
  }
  EXPECT_EQ(r.issued_total(), r.completed_total());
}

// Backlogged requests still measure from their arrival instant: pile requests on
// one connection faster than the server drains them and the tail must reflect
// the queueing delay (monotonically growing completion - intended).
TEST(OpenLoopLatency, QueueingDelayLandsInTheMeasuredTail) {
  OpenLoopConfig cfg;
  cfg.connections = 1;
  cfg.client_stacks = 1;
  cfg.server_ports = 1;
  cfg.ramp_batch = 1;
  cfg.server_work_per_request_ns = 100 * kMicrosecond;  // server is the bottleneck
  // Deterministic arrivals (one per 50us via incast; Poisson off below) make the
  // offered rate exactly 2x the service rate: the queue grows one request per
  // service time, without sampling noise.
  cfg.incast_fanin = 1;
  cfg.incast_period_ns = 50 * kMicrosecond;
  OpenLoopRunner r(cfg);
  ASSERT_TRUE(r.Ramp());

  std::vector<TimeNs> latencies;
  r.set_completion_probe([&](TimeNs intended, TimeNs completed) {
    latencies.push_back(completed - intended);
  });
  const SweepPoint pt =
      r.RunPoint(/*offered_rps=*/0, /*warmup=*/0, /*measure=*/20 * kMillisecond);
  ASSERT_GE(latencies.size(), 32u);
  // Later completions waited longer than early ones — the signature of an
  // open-loop measurement. Per-request latency sawtooths within a server batch
  // (the earliest-intended request of a burst waits longest), so compare block
  // means, which isolate the queue-growth trend. A closed-loop
  // (coordinated-omission) measurement would show flat latency here.
  const std::size_t n = latencies.size();
  TimeNs early_sum = 0;
  TimeNs late_sum = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    early_sum += latencies[k];
    late_sum += latencies[n - 1 - k];
  }
  EXPECT_GT(late_sum, early_sum * 4);
  EXPECT_GT(pt.latency.p999, pt.latency.p50);
}

TEST(OpenLoopValidate, AcceptsConfigsWithinFourTupleCapacity) {
  OpenLoopConfig cfg;  // defaults: 100k connections, capacity 8 * 64 * 2048
  EXPECT_TRUE(OpenLoopRunner::ValidateConfig(cfg).ok());
  cfg.connections = cfg.client_stacks * cfg.server_ports *
                    OpenLoopRunner::kEphemeralPartition;  // exactly full
  EXPECT_TRUE(OpenLoopRunner::ValidateConfig(cfg).ok());
}

TEST(OpenLoopValidate, OverCapacityIsTypedWithTheOffendingNumbers) {
  OpenLoopConfig cfg;
  cfg.client_stacks = 2;
  cfg.server_ports = 3;
  cfg.connections = 2 * 3 * OpenLoopRunner::kEphemeralPartition + 1;
  const Status s = OpenLoopRunner::ValidateConfig(cfg);
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  // The message names both the request and the capacity so operators can size
  // the sweep without reading the source.
  EXPECT_NE(s.message().find("12289"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("12288"), std::string::npos) << s.message();
}

TEST(OpenLoopValidate, ZeroCountsAreRejected) {
  OpenLoopConfig cfg;
  cfg.connections = 0;
  EXPECT_EQ(OpenLoopRunner::ValidateConfig(cfg).code(), ErrorCode::kInvalidArgument);
  cfg = OpenLoopConfig{};
  cfg.client_stacks = 0;
  EXPECT_EQ(OpenLoopRunner::ValidateConfig(cfg).code(), ErrorCode::kInvalidArgument);
  cfg = OpenLoopConfig{};
  cfg.server_ports = 0;
  EXPECT_EQ(OpenLoopRunner::ValidateConfig(cfg).code(), ErrorCode::kInvalidArgument);
}

TEST(OpenLoopValidate, TenantModeRequiresAWeightedVictim) {
  OpenLoopConfig cfg;
  cfg.tenant.enabled = true;
  EXPECT_TRUE(OpenLoopRunner::ValidateConfig(cfg).ok());
  cfg.tenant.victim.weight = 0;
  EXPECT_EQ(OpenLoopRunner::ValidateConfig(cfg).code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace demi
