// Tests for the fabric (switching, fault injection) and the DPDK-style SimNic
// (descriptor rings, RSS, offloaded programs, capability reporting).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/hw/device.h"
#include "src/sim/fault_injector.h"
#include "tests/net_test_util.h"

namespace demi {
namespace {

TEST(FabricTest, DeliversFrameToLearnedPort) {
  TwoHostRig rig;
  ASSERT_TRUE(rig.nic_a
                  .Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "ping"))
                  .ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  auto frame = rig.nic_b.PollRx(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->Slice(kEthHeaderSize).AsStringView(), "ping");
}

TEST(FabricTest, BroadcastFloodsAllOtherPorts) {
  TwoHostRig rig;
  ASSERT_TRUE(
      rig.nic_a
          .Transmit(0, MakeTestFrame(MacAddress::Broadcast(), rig.nic_a.mac(), "hello"))
          .ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  EXPECT_EQ(rig.nic_a.RxPending(0), 0u);  // not echoed to the sender
}

TEST(FabricTest, FrameNotForUsIsIgnored) {
  TwoHostRig rig;
  const MacAddress stranger = MacAddress::ForHost(99);
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(stranger, rig.nic_a.mac(), "not yours")).ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 0u);
}

TEST(FabricTest, WireLatencyMatchesCostModel) {
  TwoHostRig rig;
  const TimeNs start = rig.sim.now();
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "t")).ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  const CostModel& cost = rig.sim.cost();
  // doorbell(host) + dma + nic + serialization + wire + nic + dma on the far side.
  const TimeNs floor = cost.wire_latency_ns + cost.pcie_dma_ns * 2 + cost.nic_process_ns * 2;
  EXPECT_GE(rig.sim.now() - start, floor);
  EXPECT_LT(rig.sim.now() - start, floor + 10 * kMicrosecond);
}

TEST(FabricTest, LossRateDropsFrames) {
  FabricConfig cfg;
  cfg.loss_rate = 1.0;
  TwoHostRig rig(cfg);
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "gone")).ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 0u);
  EXPECT_EQ(rig.fabric.frames_dropped(), 1u);
}

TEST(FabricTest, DuplicationDeliversTwice) {
  FabricConfig cfg;
  cfg.dup_rate = 1.0;
  TwoHostRig rig(cfg);
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "x")).ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 2u);
}

TEST(SimNicTest, TxRingBackpressure) {
  NicConfig nic_cfg;
  nic_cfg.ring_size = 4;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "d")).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4);  // ring full afterwards
  rig.sim.RunFor(kMillisecond);
  // After draining, transmit works again.
  EXPECT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "d")).ok());
}

TEST(SimNicTest, RxRingOverflowDropsAndCounts) {
  NicConfig nic_cfg;
  nic_cfg.ring_size = 4;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 4; ++i) {
      (void)rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "x"));
    }
    rig.sim.RunFor(kMillisecond);  // nobody drains nic_b
  }
  EXPECT_EQ(rig.nic_b.RxPending(0), 4u);
  EXPECT_GT(rig.nic_b.rx_ring_drops(), 0u);
}

TEST(SimNicTest, RxNotifyFiresOnEmptyToNonEmpty) {
  TwoHostRig rig;
  int notifies = 0;
  rig.nic_b.SetRxNotify([&](int queue) { ++notifies; });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "n")).ok());
  }
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(notifies, 1);  // interrupt coalescing shape: one edge, three frames
  while (rig.nic_b.PollRx(0)) {
  }
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "n")).ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(notifies, 2);
}

TEST(SimNicTest, OffloadRequiresCapability) {
  TwoHostRig rig;  // default NIC: no offload
  NicProgram prog;
  prog.kind = NicProgram::Kind::kFilter;
  prog.filter = [](const Buffer&) { return true; };
  EXPECT_EQ(rig.nic_b.InstallRxProgram(0, std::move(prog)).code(), ErrorCode::kUnsupported);
}

TEST(SimNicTest, OnDeviceFilterDropsBeforeHostDma) {
  NicConfig nic_cfg;
  nic_cfg.supports_offload = true;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  NicProgram prog;
  prog.kind = NicProgram::Kind::kFilter;
  prog.host_cost_ns = 100;
  prog.filter = [](const Buffer& frame) {
    return frame.Slice(kEthHeaderSize).AsStringView()[0] == 'k';
  };
  ASSERT_TRUE(rig.nic_b.InstallRxProgram(0, std::move(prog)).ok());

  (void)rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "keep"));
  (void)rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "drop"));
  rig.sim.RunFor(kMillisecond);

  EXPECT_EQ(rig.nic_b.RxPending(0), 1u);
  auto frame = rig.nic_b.PollRx(0);
  EXPECT_EQ(frame->Slice(kEthHeaderSize).AsStringView(), "keep");
  // Device compute was charged to the device, not the host CPU.
  EXPECT_GT(rig.sim.counters().Get(Counter::kDeviceComputeNs), 0u);
}

TEST(SimNicTest, OnDeviceMapTransformsFrame) {
  NicConfig nic_cfg;
  nic_cfg.supports_offload = true;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  NicProgram prog;
  prog.kind = NicProgram::Kind::kMap;
  prog.host_cost_ns = 50;
  prog.map = [](const Buffer& frame) {
    Buffer out = Buffer::CopyOf(frame.span());
    out.mutable_data()[kEthHeaderSize] = std::byte{'X'};
    return out;
  };
  ASSERT_TRUE(rig.nic_b.InstallRxProgram(0, std::move(prog)).ok());
  (void)rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "abc"));
  rig.sim.RunFor(kMillisecond);
  auto frame = rig.nic_b.PollRx(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->Slice(kEthHeaderSize).AsStringView(), "Xbc");
}

TEST(SimNicTest, CapsMatchTable1Categories) {
  Simulation sim;
  Fabric fabric(&sim);
  HostCpu host(&sim, "h");
  SimNic plain(&host, &fabric, MacAddress::ForHost(1));
  EXPECT_TRUE(plain.caps().kernel_bypass);
  EXPECT_FALSE(plain.caps().transport_offload);
  EXPECT_FALSE(plain.caps().program_offload);
  EXPECT_EQ(plain.caps().category, "kernel-bypass only");

  NicConfig smart_cfg;
  smart_cfg.supports_offload = true;
  SimNic smart(&host, &fabric, MacAddress::ForHost(2), smart_cfg);
  EXPECT_TRUE(smart.caps().program_offload);
  EXPECT_EQ(smart.caps().category, "+other features");
}

TEST(SimNicTest, RssSpreadsFlowsAcrossQueues) {
  NicConfig nic_cfg;
  nic_cfg.num_queues = 4;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  // Synthesize IPv4-ish frames with varying "port" bytes so RSS sees different flows.
  int nonzero_queues = 0;
  for (int flow = 0; flow < 32; ++flow) {
    Buffer frame = Buffer::Allocate(kEthHeaderSize + 24);
    WriteEthHeader(frame.mutable_span(),
                   EthHeader{rig.nic_b.mac(), rig.nic_a.mac(), kEtherTypeIpv4});
    frame.mutable_data()[kEthHeaderSize + 13] = std::byte{static_cast<std::uint8_t>(flow)};
    (void)rig.nic_a.Transmit(0, std::move(frame));
  }
  rig.sim.RunFor(kMillisecond);
  for (int q = 0; q < 4; ++q) {
    if (rig.nic_b.RxPending(q) > 0) {
      ++nonzero_queues;
    }
  }
  EXPECT_GE(nonzero_queues, 2);  // flows actually spread
}

// --- Burst TX/RX (DPDK tx_burst / rx_burst semantics) ---------------------------

std::vector<FrameChain> MakeBurst(TwoHostRig& rig, int n) {
  std::vector<FrameChain> frames;
  for (int i = 0; i < n; ++i) {
    frames.emplace_back(
        MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "burst" + std::to_string(i)));
  }
  return frames;
}

TEST(SimNicBurstTest, OneDoorbellCoversWholeBurst) {
  TwoHostRig rig;
  auto& c = rig.sim.counters();
  auto frames = MakeBurst(rig, 8);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, frames), 8u);
  EXPECT_EQ(c.Get(Counter::kDoorbells), 1u);
  EXPECT_EQ(c.Get(Counter::kTxBursts), 1u);
  EXPECT_EQ(c.Get(Counter::kFramesPerDoorbell), 8u);
  rig.sim.RunFor(kMillisecond);
  std::vector<Buffer> out;
  EXPECT_EQ(rig.nic_b.PollRxBurst(0, out, 64), 8u);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[0].Slice(kEthHeaderSize).AsStringView(), "burst0");
  EXPECT_EQ(out[7].Slice(kEthHeaderSize).AsStringView(), "burst7");
}

TEST(SimNicBurstTest, BurstChargesOneDoorbellOfHostWork) {
  TwoHostRig rig;
  const std::uint64_t busy = rig.host_a.busy_ns();
  auto frames = MakeBurst(rig, 16);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, frames), 16u);
  // The whole point of batching: host CPU pays the MMIO once, not 16 times.
  EXPECT_EQ(rig.host_a.busy_ns() - busy,
            static_cast<std::uint64_t>(rig.sim.cost().pcie_doorbell_ns));
}

TEST(SimNicBurstTest, AcceptsOnlyRingSpace) {
  NicConfig nic_cfg;
  nic_cfg.ring_size = 4;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  auto frames = MakeBurst(rig, 6);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, frames), 4u);
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 4u);
}

TEST(SimNicBurstTest, DescriptorsPipelineBehindFirstDma) {
  TwoHostRig rig;
  const CostModel& cost = rig.sim.cost();
  const TimeNs start = rig.sim.now();
  auto frames = MakeBurst(rig, 8);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, frames), 8u);
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) == 8; }, kSecond));
  // The last descriptor pays one full round trip plus 7 pipelined fetch slots —
  // not 8 full round trips, which is what 8 singleton doorbells would cost.
  const TimeNs pipelined_floor = cost.pcie_doorbell_ns + cost.pcie_dma_ns +
                                 7 * cost.pcie_dma_batch_descriptor_ns +
                                 cost.nic_process_ns + cost.wire_latency_ns;
  const TimeNs serial_cost = 8 * (cost.pcie_doorbell_ns + cost.pcie_dma_ns);
  EXPECT_GE(rig.sim.now() - start, pipelined_floor);
  EXPECT_LT(rig.sim.now() - start, serial_cost + cost.wire_latency_ns + 10 * kMicrosecond);
}

TEST(SimNicBurstTest, MidBurstLinkDownDropsOnlyTail) {
  TwoHostRig rig;
  FaultInjector faults(&rig.sim, 1);
  rig.nic_a.AttachFaultInjector(&faults);
  rig.nic_b.AttachFaultInjector(&faults);
  const CostModel& cost = rig.sim.cost();
  // Cut the link between descriptor 3's and descriptor 4's wire time. Link state is
  // sampled per frame when its DMA completes, so the burst's head must survive.
  const TimeNs cut = cost.pcie_doorbell_ns + cost.pcie_dma_ns + cost.nic_process_ns +
                     3 * cost.pcie_dma_batch_descriptor_ns + 1;
  faults.ScheduleLinkDown(rig.nic_a.fault_device(), rig.sim.now() + cut);
  auto& c = rig.sim.counters();
  const std::uint64_t dropped = c.Get(Counter::kPacketsDropped);
  auto frames = MakeBurst(rig, 8);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, frames), 8u);
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 4u);  // descriptors 0..3 made the wire
  EXPECT_EQ(c.Get(Counter::kPacketsDropped) - dropped, 4u);  // 4..7 died in the device
}

TEST(SimNicBurstTest, DeadNicRefusesBurstWithoutDoorbell) {
  TwoHostRig rig;
  FaultInjector faults(&rig.sim, 1);
  rig.nic_a.AttachFaultInjector(&faults);
  faults.ScheduleDeviceFailure(rig.nic_a.fault_device(), kMicrosecond);
  rig.sim.RunFor(10 * kMicrosecond);
  auto frames = MakeBurst(rig, 4);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, frames), 0u);
  EXPECT_EQ(rig.sim.counters().Get(Counter::kDoorbells), 0u);
}

TEST(SimNicBurstTest, PollRxBurstHonorsMax) {
  TwoHostRig rig;
  auto frames = MakeBurst(rig, 8);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, frames), 8u);
  rig.sim.RunFor(kMillisecond);
  std::vector<Buffer> out;
  EXPECT_EQ(rig.nic_b.PollRxBurst(0, out, 3), 3u);
  EXPECT_EQ(rig.nic_b.PollRxBurst(0, out, 64), 5u);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(rig.nic_b.PollRxBurst(0, out, 64), 0u);  // drained
}

TEST(SimNicBurstTest, SingleFrameTransmitIsBurstOfOne) {
  TwoHostRig rig;
  auto& c = rig.sim.counters();
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "one")).ok());
  EXPECT_EQ(c.Get(Counter::kDoorbells), 1u);
  EXPECT_EQ(c.Get(Counter::kTxBursts), 1u);
  EXPECT_EQ(c.Get(Counter::kFramesPerDoorbell), 1u);
}

}  // namespace
}  // namespace demi
