// Tests for the fabric (switching, fault injection) and the DPDK-style SimNic
// (descriptor rings, RSS, offloaded programs, capability reporting).

#include <gtest/gtest.h>

#include "src/hw/device.h"
#include "tests/net_test_util.h"

namespace demi {
namespace {

TEST(FabricTest, DeliversFrameToLearnedPort) {
  TwoHostRig rig;
  ASSERT_TRUE(rig.nic_a
                  .Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "ping"))
                  .ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  auto frame = rig.nic_b.PollRx(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->Slice(kEthHeaderSize).AsStringView(), "ping");
}

TEST(FabricTest, BroadcastFloodsAllOtherPorts) {
  TwoHostRig rig;
  ASSERT_TRUE(
      rig.nic_a
          .Transmit(0, MakeTestFrame(MacAddress::Broadcast(), rig.nic_a.mac(), "hello"))
          .ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  EXPECT_EQ(rig.nic_a.RxPending(0), 0u);  // not echoed to the sender
}

TEST(FabricTest, FrameNotForUsIsIgnored) {
  TwoHostRig rig;
  const MacAddress stranger = MacAddress::ForHost(99);
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(stranger, rig.nic_a.mac(), "not yours")).ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 0u);
}

TEST(FabricTest, WireLatencyMatchesCostModel) {
  TwoHostRig rig;
  const TimeNs start = rig.sim.now();
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "t")).ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  const CostModel& cost = rig.sim.cost();
  // doorbell(host) + dma + nic + serialization + wire + nic + dma on the far side.
  const TimeNs floor = cost.wire_latency_ns + cost.pcie_dma_ns * 2 + cost.nic_process_ns * 2;
  EXPECT_GE(rig.sim.now() - start, floor);
  EXPECT_LT(rig.sim.now() - start, floor + 10 * kMicrosecond);
}

TEST(FabricTest, LossRateDropsFrames) {
  FabricConfig cfg;
  cfg.loss_rate = 1.0;
  TwoHostRig rig(cfg);
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "gone")).ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 0u);
  EXPECT_EQ(rig.fabric.frames_dropped(), 1u);
}

TEST(FabricTest, DuplicationDeliversTwice) {
  FabricConfig cfg;
  cfg.dup_rate = 1.0;
  TwoHostRig rig(cfg);
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "x")).ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 2u);
}

TEST(SimNicTest, TxRingBackpressure) {
  NicConfig nic_cfg;
  nic_cfg.ring_size = 4;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "d")).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4);  // ring full afterwards
  rig.sim.RunFor(kMillisecond);
  // After draining, transmit works again.
  EXPECT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "d")).ok());
}

TEST(SimNicTest, RxRingOverflowDropsAndCounts) {
  NicConfig nic_cfg;
  nic_cfg.ring_size = 4;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  for (int burst = 0; burst < 4; ++burst) {
    for (int i = 0; i < 4; ++i) {
      (void)rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "x"));
    }
    rig.sim.RunFor(kMillisecond);  // nobody drains nic_b
  }
  EXPECT_EQ(rig.nic_b.RxPending(0), 4u);
  EXPECT_GT(rig.nic_b.rx_ring_drops(), 0u);
}

TEST(SimNicTest, RxNotifyFiresOnEmptyToNonEmpty) {
  TwoHostRig rig;
  int notifies = 0;
  rig.nic_b.SetRxNotify([&](int queue) { ++notifies; });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "n")).ok());
  }
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(notifies, 1);  // interrupt coalescing shape: one edge, three frames
  while (rig.nic_b.PollRx(0)) {
  }
  ASSERT_TRUE(
      rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "n")).ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(notifies, 2);
}

TEST(SimNicTest, OffloadRequiresCapability) {
  TwoHostRig rig;  // default NIC: no offload
  NicProgram prog;
  prog.kind = NicProgram::Kind::kFilter;
  prog.filter = [](const Buffer&) { return true; };
  EXPECT_EQ(rig.nic_b.InstallRxProgram(0, std::move(prog)).code(), ErrorCode::kUnsupported);
}

TEST(SimNicTest, OnDeviceFilterDropsBeforeHostDma) {
  NicConfig nic_cfg;
  nic_cfg.supports_offload = true;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  NicProgram prog;
  prog.kind = NicProgram::Kind::kFilter;
  prog.host_cost_ns = 100;
  prog.filter = [](const Buffer& frame) {
    return frame.Slice(kEthHeaderSize).AsStringView()[0] == 'k';
  };
  ASSERT_TRUE(rig.nic_b.InstallRxProgram(0, std::move(prog)).ok());

  (void)rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "keep"));
  (void)rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "drop"));
  rig.sim.RunFor(kMillisecond);

  EXPECT_EQ(rig.nic_b.RxPending(0), 1u);
  auto frame = rig.nic_b.PollRx(0);
  EXPECT_EQ(frame->Slice(kEthHeaderSize).AsStringView(), "keep");
  // Device compute was charged to the device, not the host CPU.
  EXPECT_GT(rig.sim.counters().Get(Counter::kDeviceComputeNs), 0u);
}

TEST(SimNicTest, OnDeviceMapTransformsFrame) {
  NicConfig nic_cfg;
  nic_cfg.supports_offload = true;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  NicProgram prog;
  prog.kind = NicProgram::Kind::kMap;
  prog.host_cost_ns = 50;
  prog.map = [](const Buffer& frame) {
    Buffer out = Buffer::CopyOf(frame.span());
    out.mutable_data()[kEthHeaderSize] = std::byte{'X'};
    return out;
  };
  ASSERT_TRUE(rig.nic_b.InstallRxProgram(0, std::move(prog)).ok());
  (void)rig.nic_a.Transmit(0, MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "abc"));
  rig.sim.RunFor(kMillisecond);
  auto frame = rig.nic_b.PollRx(0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->Slice(kEthHeaderSize).AsStringView(), "Xbc");
}

TEST(SimNicTest, CapsMatchTable1Categories) {
  Simulation sim;
  Fabric fabric(&sim);
  HostCpu host(&sim, "h");
  SimNic plain(&host, &fabric, MacAddress::ForHost(1));
  EXPECT_TRUE(plain.caps().kernel_bypass);
  EXPECT_FALSE(plain.caps().transport_offload);
  EXPECT_FALSE(plain.caps().program_offload);
  EXPECT_EQ(plain.caps().category, "kernel-bypass only");

  NicConfig smart_cfg;
  smart_cfg.supports_offload = true;
  SimNic smart(&host, &fabric, MacAddress::ForHost(2), smart_cfg);
  EXPECT_TRUE(smart.caps().program_offload);
  EXPECT_EQ(smart.caps().category, "+other features");
}

TEST(SimNicTest, RssSpreadsFlowsAcrossQueues) {
  NicConfig nic_cfg;
  nic_cfg.num_queues = 4;
  TwoHostRig rig(FabricConfig{}, nic_cfg);
  // Synthesize IPv4-ish frames with varying "port" bytes so RSS sees different flows.
  int nonzero_queues = 0;
  for (int flow = 0; flow < 32; ++flow) {
    Buffer frame = Buffer::Allocate(kEthHeaderSize + 24);
    WriteEthHeader(frame.mutable_span(),
                   EthHeader{rig.nic_b.mac(), rig.nic_a.mac(), kEtherTypeIpv4});
    frame.mutable_data()[kEthHeaderSize + 13] = std::byte{static_cast<std::uint8_t>(flow)};
    (void)rig.nic_a.Transmit(0, std::move(frame));
  }
  rig.sim.RunFor(kMillisecond);
  for (int q = 0; q < 4; ++q) {
    if (rig.nic_b.RxPending(q) > 0) {
      ++nonzero_queues;
    }
  }
  EXPECT_GE(nonzero_queues, 2);  // flows actually spread
}

}  // namespace
}  // namespace demi
