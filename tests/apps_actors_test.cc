// Integration tests: the echo and KV actors end-to-end on every architecture
// (Demikernel over Catnip/Catnap/Catmint, POSIX over the kernel, mTCP-like), all
// producing identical application results at very different cost signatures.

#include <gtest/gtest.h>

#include "src/apps/actors.h"
#include "src/core/harness.h"

namespace demi {
namespace {

constexpr std::uint16_t kPort = 6379;

HostOptions RdmaOpts() {
  HostOptions o;
  o.with_rdma = true;
  o.with_nic = false;
  o.with_kernel = false;
  return o;
}

HostOptions LoadgenOpts(bool rdma = false) {
  HostOptions o = rdma ? RdmaOpts() : HostOptions{};
  o.charges_clock = false;
  return o;
}

TEST(EchoActorsTest, DemiCatnipEcho) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
  auto& server_libos = h.Catnip(sh);
  auto& client_libos = h.Catnip(ch);
  DemiEchoServer server(&server_libos, kPort);
  DemiEchoClient client(&client_libos, Endpoint{sh.ip, kPort}, 64, 100);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 120 * kSecond));
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(client.completed(), 100u);
  EXPECT_EQ(server.echoed(), 100u);
  EXPECT_GT(client.latency().P50(), 0u);
}

TEST(EchoActorsTest, DemiCatnapEcho) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
  auto& server_libos = h.Catnap(sh);
  auto& client_libos = h.Catnap(ch);
  DemiEchoServer server(&server_libos, kPort);
  DemiEchoClient client(&client_libos, Endpoint{sh.ip, kPort}, 64, 50);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 120 * kSecond));
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(server.echoed(), 50u);
}

TEST(EchoActorsTest, DemiCatmintEcho) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1", RdmaOpts());
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts(/*rdma=*/true));
  auto& server_libos = h.Catmint(sh);
  auto& client_libos = h.Catmint(ch);
  DemiEchoServer server(&server_libos, kPort);
  DemiEchoClient client(&client_libos, Endpoint{sh.ip, kPort}, 64, 100);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 120 * kSecond));
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(server.echoed(), 100u);
}

TEST(EchoActorsTest, PosixEcho) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
  PosixEchoServer server(sh.kernel.get(), kPort, 64);
  PosixEchoClient client(ch.kernel.get(), Endpoint{sh.ip, kPort}, 64, 100);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 120 * kSecond));
  EXPECT_EQ(client.completed(), 100u);
  EXPECT_EQ(server.echoed(), 100u);
}

TEST(EchoActorsTest, MtcpEcho) {
  TestHarness h;
  HostOptions server_opts;
  server_opts.with_kernel = false;  // mTCP replaces the kernel stack entirely
  auto& sh = h.AddHost("server", "10.0.0.1", server_opts);
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
  MtcpConfig mcfg;
  mcfg.ip = sh.ip;
  MtcpStack mtcp(sh.cpu.get(), sh.nic.get(), mcfg);
  MtcpEchoServer server(&mtcp, kPort, 64);
  PosixEchoClient client(ch.kernel.get(), Endpoint{sh.ip, kPort}, 64, 50);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 120 * kSecond));
  EXPECT_EQ(client.completed(), 50u);
  EXPECT_EQ(server.echoed(), 50u);
}

TEST(EchoActorsTest, LatencyOrderingMatchesArchitectures) {
  // The paper's core performance claims in one test:
  // catnip (kernel-bypass, zero copy) < posix (kernel) < mtcp (batched user stack).
  auto run_catnip = [] {
    TestHarness h;
    auto& sh = h.AddHost("server", "10.0.0.1");
    auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
    auto& sl = h.Catnip(sh);
    auto& cl = h.Catnip(ch);
    DemiEchoServer server(&sl, kPort);
    DemiEchoClient client(&cl, Endpoint{sh.ip, kPort}, 64, 200);
    EXPECT_TRUE(h.RunUntil([&] { return client.done(); }, 120 * kSecond));
    return client.latency().P50();
  };
  auto run_posix = [] {
    TestHarness h;
    auto& sh = h.AddHost("server", "10.0.0.1");
    auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
    PosixEchoServer server(sh.kernel.get(), kPort, 64);
    PosixEchoClient client(ch.kernel.get(), Endpoint{sh.ip, kPort}, 64, 200);
    EXPECT_TRUE(h.RunUntil([&] { return client.done(); }, 120 * kSecond));
    return client.latency().P50();
  };
  auto run_mtcp = [] {
    TestHarness h;
    HostOptions server_opts;
    server_opts.with_kernel = false;
    auto& sh = h.AddHost("server", "10.0.0.1", server_opts);
    auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
    MtcpConfig mcfg;
    mcfg.ip = sh.ip;
    MtcpStack mtcp(sh.cpu.get(), sh.nic.get(), mcfg);
    MtcpEchoServer server(&mtcp, kPort, 64);
    PosixEchoClient client(ch.kernel.get(), Endpoint{sh.ip, kPort}, 64, 200);
    EXPECT_TRUE(h.RunUntil([&] { return client.done(); }, 120 * kSecond));
    return client.latency().P50();
  };
  const std::uint64_t catnip = run_catnip();
  const std::uint64_t posix = run_posix();
  const std::uint64_t mtcp = run_mtcp();
  EXPECT_LT(catnip, posix);  // kernel bypass beats the kernel
  EXPECT_LT(posix, mtcp);    // §6: mTCP's latency exceeds the kernel's
}

TEST(KvActorsTest, DemiKvGetSet) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  DemiKvServer server(&sl, kPort);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 100;
  wcfg.get_ratio = 0.5;
  KvWorkload workload(wcfg);
  // Preload directly into the engine (control path, not measured).
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    (void)server.engine().Execute(workload.LoadCommand(k));
  }
  DemiKvClient client(&cl, Endpoint{sh.ip, kPort}, &workload, 300);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 300 * kSecond));
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(client.completed(), 300u);
  EXPECT_EQ(server.requests(), 300u);
}

TEST(KvActorsTest, PosixKvGetSet) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
  PosixKvServer server(sh.kernel.get(), kPort);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 100;
  wcfg.get_ratio = 0.5;
  KvWorkload workload(wcfg);
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    (void)server.engine().Execute(workload.LoadCommand(k));
  }
  PosixKvClient client(ch.kernel.get(), Endpoint{sh.ip, kPort}, &workload, 300);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 300 * kSecond));
  EXPECT_EQ(client.completed(), 300u);
  EXPECT_EQ(server.stats().requests, 300u);
}

TEST(KvActorsTest, FragmentedClientCausesWastedScansOnPosixOnly) {
  // The §3.2 stream pathology: a trickling sender wakes the POSIX server repeatedly
  // with partial requests; a Demikernel server never sees a partial element.
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
  PosixKvServer server(sh.kernel.get(), kPort);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 10;
  wcfg.value_bytes = 512;
  wcfg.get_ratio = 0.0;
  KvWorkload workload(wcfg);
  PosixKvClient client(ch.kernel.get(), Endpoint{sh.ip, kPort}, &workload, 20,
                       /*fragments=*/4, /*fragment_gap_ns=*/20 * kMicrosecond);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 300 * kSecond));
  EXPECT_EQ(client.completed(), 20u);
  EXPECT_GT(server.stats().incomplete_scans, 20u);  // several wasted scans per request
}

TEST(KvActorsTest, DemiServerNeverSeesPartialRequests) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2", LoadgenOpts());
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  DemiKvServer server(&sl, kPort);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 10;
  wcfg.value_bytes = 4096;  // spans several TCP segments
  wcfg.get_ratio = 0.0;
  KvWorkload workload(wcfg);
  DemiKvClient client(&cl, Endpoint{sh.ip, kPort}, &workload, 50);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 300 * kSecond));
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(server.requests(), 50u);
  // No stream scans anywhere on the Demikernel host.
  EXPECT_EQ(sh.cpu->counters().Get(Counter::kStreamScans), 0u);
}

TEST(KvActorsTest, MultipleClientsShareOneServer) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& sl = h.Catnip(sh);
  DemiKvServer server(&sl, kPort);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 50;
  std::vector<std::unique_ptr<KvWorkload>> workloads;
  std::vector<std::unique_ptr<DemiKvClient>> clients;
  std::vector<TestHarness::Host*> hosts;
  for (int i = 0; i < 4; ++i) {
    auto& chost = h.AddHost("client" + std::to_string(i),
                            "10.0.0." + std::to_string(10 + i), LoadgenOpts());
    hosts.push_back(&chost);
    auto& cl = h.Catnip(chost);
    wcfg.seed = 1000 + i;
    workloads.push_back(std::make_unique<KvWorkload>(wcfg));
    clients.push_back(std::make_unique<DemiKvClient>(&cl, Endpoint{sh.ip, kPort},
                                                     workloads.back().get(), 100));
  }
  ASSERT_TRUE(h.RunUntil(
      [&] {
        for (const auto& c : clients) {
          if (!c->done()) {
            return false;
          }
        }
        return true;
      },
      600 * kSecond));
  EXPECT_EQ(server.requests(), 400u);
  for (const auto& c : clients) {
    EXPECT_FALSE(c->failed());
  }
}

}  // namespace
}  // namespace demi
