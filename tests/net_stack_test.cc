// Tests for NetStack beyond TCP: UDP datagrams, ARP behaviour, and the multi-stack
// coexistence machinery (flow steering + ephemeral-port partitioning) that lets a
// kernel stack and a kernel-bypass libOS stack share one NIC.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tests/net_test_util.h"

namespace demi {
namespace {

TEST(UdpTest, SendRecvRoundTrip) {
  TwoStackRig rig;
  std::vector<std::pair<Endpoint, std::string>> got;
  ASSERT_TRUE(rig.stack_b
                  .UdpBind(5000,
                           [&](Endpoint from, Buffer payload) {
                             got.emplace_back(from, payload.ToString());
                           })
                  .ok());
  ASSERT_TRUE(rig.stack_a
                  .UdpSend(6000, Endpoint{rig.stack_b.ip(), 5000},
                           Buffer::CopyOf("datagram one"))
                  .ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return got.size() == 1; }, kSecond));
  EXPECT_EQ(got[0].second, "datagram one");
  EXPECT_EQ(got[0].first.ip, rig.stack_a.ip());
  EXPECT_EQ(got[0].first.port, 6000);
}

TEST(UdpTest, UnboundPortDropsSilently) {
  TwoStackRig rig;
  ASSERT_TRUE(rig.stack_a
                  .UdpSend(6000, Endpoint{rig.stack_b.ip(), 9}, Buffer::CopyOf("void"))
                  .ok());
  rig.sim.RunFor(kMillisecond);  // no crash, no reply: silent drop is the contract
}

TEST(UdpTest, UnbindStopsDelivery) {
  TwoStackRig rig;
  int received = 0;
  ASSERT_TRUE(rig.stack_b.UdpBind(5000, [&](Endpoint, Buffer) { ++received; }).ok());
  ASSERT_TRUE(rig.stack_a
                  .UdpSend(6000, Endpoint{rig.stack_b.ip(), 5000}, Buffer::CopyOf("1"))
                  .ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return received == 1; }, kSecond));
  rig.stack_b.UdpUnbind(5000);
  ASSERT_TRUE(rig.stack_a
                  .UdpSend(6000, Endpoint{rig.stack_b.ip(), 5000}, Buffer::CopyOf("2"))
                  .ok());
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(received, 1);
}

TEST(UdpTest, OversizedDatagramRejected) {
  TwoStackRig rig;
  EXPECT_EQ(rig.stack_a
                .UdpSend(6000, Endpoint{rig.stack_b.ip(), 5000},
                         Buffer::Allocate(2000))
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST(UdpTest, DoubleBindRejected) {
  TwoStackRig rig;
  ASSERT_TRUE(rig.stack_b.UdpBind(5000, [](Endpoint, Buffer) {}).ok());
  EXPECT_EQ(rig.stack_b.UdpBind(5000, [](Endpoint, Buffer) {}).code(),
            ErrorCode::kAddressInUse);
}

TEST(ArpTest, CacheAvoidsRepeatedBroadcasts) {
  TwoStackRig rig;
  ASSERT_TRUE(rig.stack_b.UdpBind(5000, [](Endpoint, Buffer) {}).ok());
  ASSERT_TRUE(rig.stack_a
                  .UdpSend(6000, Endpoint{rig.stack_b.ip(), 5000}, Buffer::CopyOf("x"))
                  .ok());
  rig.sim.RunFor(kMillisecond);
  const std::uint64_t tx_after_first = rig.stack_a.frames_tx();
  // 10 more sends: no further ARP requests, exactly one frame per datagram.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rig.stack_a
                    .UdpSend(6000, Endpoint{rig.stack_b.ip(), 5000}, Buffer::CopyOf("y"))
                    .ok());
  }
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.stack_a.frames_tx() - tx_after_first, 10u);
}

TEST(ArpTest, UnresolvableAddressDropsAfterRetries) {
  TwoStackRig rig;
  const std::uint64_t dropped_before =
      rig.host_a.counters().Get(Counter::kPacketsDropped);
  ASSERT_TRUE(rig.stack_a
                  .UdpSend(6000, Endpoint{Ipv4Address::Parse("10.9.9.9"), 5000},
                           Buffer::CopyOf("to nowhere"))
                  .ok());
  rig.sim.RunFor(20 * kMillisecond);  // 3 retries at 1ms plus slack
  EXPECT_GT(rig.host_a.counters().Get(Counter::kPacketsDropped), dropped_before);
}

TEST(MultiStackTest, TwoStacksShareOneNicViaFlowSteering) {
  // One host, one NIC with two queues, two stacks with the same IP (the kernel +
  // leased-queue arrangement of Figure 2). Flow steering must route each listener's
  // traffic to its own stack.
  Simulation sim;
  Fabric fabric(&sim);
  HostCpu host(&sim, "shared");
  NicConfig nic_cfg;
  nic_cfg.num_queues = 2;
  SimNic nic(&host, &fabric, MacAddress::ForHost(1), nic_cfg);

  NetStackConfig cfg0;
  cfg0.ip = Ipv4Address::Parse("10.0.0.1");
  cfg0.nic_queue = 0;
  cfg0.seed = 1;
  NetStack stack0(&host, &nic, cfg0);
  NetStackConfig cfg1 = cfg0;
  cfg1.nic_queue = 1;
  cfg1.seed = 2;
  NetStack stack1(&host, &nic, cfg1);

  HostCpu peer_cpu(&sim, "peer");
  SimNic peer_nic(&peer_cpu, &fabric, MacAddress::ForHost(2));
  NetStackConfig peer_cfg;
  peer_cfg.ip = Ipv4Address::Parse("10.0.0.2");
  peer_cfg.seed = 3;
  NetStack peer(&peer_cpu, &peer_nic, peer_cfg);

  auto l0 = stack0.TcpListen(1000);
  auto l1 = stack1.TcpListen(2000);
  ASSERT_TRUE(l0.ok());
  ASSERT_TRUE(l1.ok());

  auto c0 = peer.TcpConnect(Endpoint{cfg0.ip, 1000});
  auto c1 = peer.TcpConnect(Endpoint{cfg0.ip, 2000});
  ASSERT_TRUE(c0.ok());
  ASSERT_TRUE(c1.ok());
  // Client-side established() precedes the server processing the final handshake
  // ACK; wait for the accept queues themselves.
  ASSERT_TRUE(sim.RunUntil(
      [&] { return (*l0)->pending() == 1 && (*l1)->pending() == 1; }, 10 * kSecond));

  // Data flows to the right stack.
  TcpConnection* s0 = (*l0)->Accept();
  TcpConnection* s1 = (*l1)->Accept();
  ASSERT_TRUE((*c0)->Send(Buffer::CopyOf("to stack zero")).ok());
  ASSERT_TRUE((*c1)->Send(Buffer::CopyOf("to stack one")).ok());
  ASSERT_TRUE(sim.RunUntil(
      [&] { return s0->recv_available() > 0 && s1->recv_available() > 0; },
      10 * kSecond));
  EXPECT_EQ(s0->Recv(64).AsStringView(), "to stack zero");
  EXPECT_EQ(s1->Recv(64).AsStringView(), "to stack one");
}

TEST(MultiStackTest, EphemeralPortRangesArePartitionedByQueue) {
  Simulation sim;
  Fabric fabric(&sim);
  HostCpu host(&sim, "shared");
  NicConfig nic_cfg;
  nic_cfg.num_queues = 2;
  SimNic nic(&host, &fabric, MacAddress::ForHost(1), nic_cfg);

  NetStackConfig cfg0;
  cfg0.ip = Ipv4Address::Parse("10.0.0.1");
  cfg0.nic_queue = 0;
  NetStack stack0(&host, &nic, cfg0);
  NetStackConfig cfg1 = cfg0;
  cfg1.nic_queue = 1;
  NetStack stack1(&host, &nic, cfg1);

  auto c0 = stack0.TcpConnect(Endpoint{Ipv4Address::Parse("10.0.0.2"), 80});
  auto c1 = stack1.TcpConnect(Endpoint{Ipv4Address::Parse("10.0.0.2"), 80});
  ASSERT_TRUE(c0.ok());
  ASSERT_TRUE(c1.ok());
  EXPECT_GE((*c0)->local().port, 49152);
  EXPECT_LT((*c0)->local().port, 49152 + 2048);
  EXPECT_GE((*c1)->local().port, 49152 + 2048);
  EXPECT_NE((*c0)->local().port, (*c1)->local().port);
}

TEST(StackLifetimeTest, ReapClosedMovesDeadConnections) {
  TwoStackRig rig;
  auto listener = rig.stack_b.TcpListen(7000);
  ASSERT_TRUE(listener.ok());
  auto conn = rig.stack_a.TcpConnect(Endpoint{rig.stack_b.ip(), 7000});
  ASSERT_TRUE(conn.ok());
  // Wait for the server side to finish the handshake (the final ACK trails the
  // client's established()).
  ASSERT_TRUE(
      rig.sim.RunUntil([&] { return listener.value()->pending() > 0; }, 10 * kSecond));
  TcpConnection* server_conn = listener.value()->Accept();
  ASSERT_NE(server_conn, nullptr);
  (*conn)->Close();
  server_conn->Close();
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] { return (*conn)->closed() && server_conn->closed(); }, 60 * kSecond));
  rig.stack_a.ReapClosed();  // must not crash or double-free
  rig.stack_b.ReapClosed();
}

// The flow table is the RX-path demultiplexer at a million concurrent flows:
// insert/lookup/erase must stay O(1) with no collision pathologies. Uses the
// table directly (no sockets) so the test runs in seconds. Connection pointers
// are synthetic — the table never dereferences them.
TEST(FlowTableScaleTest, MillionFlowsFlatProbeCost) {
  constexpr std::size_t kFlows = 1'000'000;
  FlowTable table;
  // Adversarially clustered 4-tuples: sequential remote IPs, sequential ports,
  // stride-free — the pattern that wrecks an identity-hashed table.
  auto tuple_of = [](std::size_t f) {
    const auto local = static_cast<std::uint16_t>(49152 + f % 2048);
    const Endpoint remote{
        Ipv4Address{0x0a000000u + static_cast<std::uint32_t>(f / 2048)},
        static_cast<std::uint16_t>(5000 + f % 64)};
    return std::pair<std::uint16_t, Endpoint>(local, remote);
  };
  auto conn_of = [](std::size_t f) {
    return reinterpret_cast<TcpConnection*>(f + 1);  // never dereferenced
  };

  for (std::size_t f = 0; f < kFlows; ++f) {
    const auto [local, remote] = tuple_of(f);
    table.Insert(local, remote, conn_of(f));
  }
  ASSERT_EQ(table.size(), kFlows);
  // Load factor stays within the 3/4 growth policy.
  EXPECT_LE(table.size() * 4, table.capacity() * 3);

  // Every flow resolves to its own connection at full occupancy.
  for (std::size_t f = 0; f < kFlows; ++f) {
    const auto [local, remote] = tuple_of(f);
    ASSERT_EQ(table.Find(local, remote), conn_of(f)) << "flow " << f;
  }
  // O(1) lookups: mean probe length stays flat (near 1) at 10^6 entries, and no
  // probe sequence degenerated into a linear scan.
  const FlowTable::Stats& st = table.stats();
  ASSERT_GE(st.lookups, kFlows);
  const double mean_probes =
      static_cast<double>(st.lookup_probes) / static_cast<double>(st.lookups);
  EXPECT_LT(mean_probes, 2.0) << "mean probe length " << mean_probes;
  EXPECT_LT(st.max_probe, 64u) << "collision pathology: max probe " << st.max_probe;

  // Erase half (every other flow), then verify the survivors still resolve and
  // the erased ones miss — backward-shift deletion must not break probe chains.
  for (std::size_t f = 0; f < kFlows; f += 2) {
    const auto [local, remote] = tuple_of(f);
    ASSERT_TRUE(table.Erase(local, remote));
  }
  EXPECT_EQ(table.size(), kFlows / 2);
  for (std::size_t f = 0; f < kFlows; ++f) {
    const auto [local, remote] = tuple_of(f);
    if (f % 2 == 0) {
      ASSERT_EQ(table.Find(local, remote), nullptr) << "erased flow " << f;
    } else {
      ASSERT_EQ(table.Find(local, remote), conn_of(f)) << "surviving flow " << f;
    }
  }
  // Reinsert into the holes: erase left the table compacted, not tombstoned.
  for (std::size_t f = 0; f < kFlows; f += 2) {
    const auto [local, remote] = tuple_of(f);
    table.Insert(local, remote, conn_of(f));
  }
  EXPECT_EQ(table.size(), kFlows);
}

}  // namespace
}  // namespace demi
