// Unit tests for the discrete-event core: clock, event ordering, cancellation,
// poller-driven stepping, and HostCpu cost accounting.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/simulation.h"

namespace demi {
namespace {

TEST(SimulationTest, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
}

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  while (sim.StepOnce()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(SimulationTest, TiesRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(50, [&] { order.push_back(1); });
  sim.Schedule(50, [&] { order.push_back(2); });
  while (sim.StepOnce()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const TimerId id = sim.Schedule(100, [&] { ran = true; });
  sim.Cancel(id);
  while (sim.StepOnce()) {
  }
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelledEventsDoNotAdvanceClockSpuriously) {
  Simulation sim;
  const TimerId id = sim.Schedule(100, [] {});
  bool ran = false;
  sim.Schedule(500, [&] { ran = true; });
  sim.Cancel(id);
  while (sim.StepOnce()) {
  }
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulationTest, EventsCanScheduleEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) {
      sim.Schedule(10, chain);
    }
  };
  sim.Schedule(10, chain);
  while (sim.StepOnce()) {
  }
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulationTest, RunUntilStopsAtPredicate) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(i * 100, [&] { ++count; });
  }
  EXPECT_TRUE(sim.RunUntil([&] { return count >= 3; }, kSecond));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), 300);
}

TEST(SimulationTest, RunUntilReturnsFalseWhenIdleAndUnmet) {
  Simulation sim;
  EXPECT_FALSE(sim.RunUntil([] { return false; }, kSecond));
}

TEST(SimulationTest, RunForAdvancesVirtualTime) {
  Simulation sim;
  sim.RunFor(5 * kMillisecond);
  EXPECT_GE(sim.now(), 5 * kMillisecond);
}

class CountingPoller : public Poller {
 public:
  explicit CountingPoller(int budget) : budget_(budget) {}
  bool Poll() override {
    if (budget_ <= 0) {
      return false;
    }
    --budget_;
    ++polled_;
    return true;
  }
  int polled() const { return polled_; }

 private:
  int budget_;
  int polled_ = 0;
};

TEST(SimulationTest, PollersDriveProgress) {
  Simulation sim;
  CountingPoller poller(3);
  sim.AddPoller(&poller);
  while (sim.StepOnce()) {
  }
  EXPECT_EQ(poller.polled(), 3);
  sim.RemovePoller(&poller);
}

TEST(SimulationTest, IdlePollersAllowEventProgress) {
  Simulation sim;
  CountingPoller poller(0);
  sim.AddPoller(&poller);
  bool ran = false;
  sim.Schedule(100, [&] { ran = true; });
  EXPECT_TRUE(sim.StepOnce());
  EXPECT_TRUE(ran);
  sim.RemovePoller(&poller);
}

TEST(HostCpuTest, WorkAdvancesClockWhenCharged) {
  Simulation sim;
  HostCpu host(&sim, "server");
  host.Work(1234);
  EXPECT_EQ(sim.now(), 1234);
  EXPECT_EQ(host.busy_ns(), 1234u);
}

TEST(HostCpuTest, UnchargedHostAccountsOnly) {
  Simulation sim;
  HostCpu host(&sim, "loadgen", /*charges_clock=*/false);
  host.Work(5000);
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(host.busy_ns(), 5000u);
  EXPECT_EQ(host.counters().Get(Counter::kHostCpuNs), 5000u);
}

TEST(HostCpuTest, CopyChargesPaperCalibratedCost) {
  Simulation sim;  // default cost model: 4 KB copy = 1 us (paper §3.2)
  HostCpu host(&sim, "server");
  const TimeNs cost = host.CopyBytes(4096);
  EXPECT_EQ(cost, 1000);
  EXPECT_EQ(host.counters().Get(Counter::kCopies), 1u);
  EXPECT_EQ(host.counters().Get(Counter::kBytesCopied), 4096u);
}

TEST(HostCpuTest, CountAggregatesIntoSimulation) {
  Simulation sim;
  HostCpu a(&sim, "a"), b(&sim, "b");
  a.Count(Counter::kSyscalls, 2);
  b.Count(Counter::kSyscalls, 3);
  EXPECT_EQ(a.counters().Get(Counter::kSyscalls), 2u);
  EXPECT_EQ(sim.counters().Get(Counter::kSyscalls), 5u);
}

TEST(CostModelTest, DerivedCostsAreConsistent) {
  CostModel cost;
  EXPECT_EQ(cost.CopyNs(4096), 1000);
  EXPECT_EQ(cost.WireSerializationNs(5000), 1000);  // 5000B at 40Gbps = 1us
  EXPECT_GT(cost.MemRegNs(1 << 20), cost.MemRegNs(4096));
  EXPECT_GT(cost.NvmeNs(false, 4096), cost.NvmeNs(true, 4096) - cost.nvme_write_ns);
  EXPECT_FALSE(cost.Describe().empty());
}

TEST(CountersTest, DescribeListsNonZeroOnly) {
  Counters c;
  c.Add(Counter::kSyscalls, 7);
  const std::string desc = c.Describe();
  EXPECT_NE(desc.find("syscalls=7"), std::string::npos);
  EXPECT_EQ(desc.find("copies"), std::string::npos);
}

}  // namespace
}  // namespace demi
