// System-level integration tests: determinism of the whole stack, the one-sided KV
// extension, end-to-end behaviour under injected faults, and cross-cutting invariants
// no single module test covers.

#include <gtest/gtest.h>

#include "src/apps/actors.h"
#include "src/apps/onesided_kv.h"
#include "src/core/harness.h"

namespace demi {
namespace {

// Runs a fixed echo scenario and returns (final sim time, total wakeups, rtt p50).
std::tuple<TimeNs, std::uint64_t, std::uint64_t> EchoFingerprint(double loss) {
  FabricConfig fabric;
  fabric.loss_rate = loss;
  fabric.seed = 77;
  TestHarness h(CostModel{}, fabric);
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  DemiEchoServer server(&sl, 7);
  DemiEchoClient client(&cl, Endpoint{sh.ip, 7}, 64, 200);
  EXPECT_TRUE(h.RunUntil([&] { return client.done(); }, 600 * kSecond));
  return {h.sim().now(), h.sim().counters().Get(Counter::kWakeups),
          client.latency().P50()};
}

TEST(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  // The whole point of the simulated substrate: bit-for-bit reproducibility.
  const auto a = EchoFingerprint(0.0);
  const auto b = EchoFingerprint(0.0);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, IdenticalRunsUnderLossAreStillDeterministic) {
  const auto a = EchoFingerprint(0.05);
  const auto b = EchoFingerprint(0.05);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  FabricConfig f1;
  f1.loss_rate = 0.05;
  f1.seed = 1;
  FabricConfig f2 = f1;
  f2.seed = 2;
  auto run = [](FabricConfig fc) {
    TestHarness h(CostModel{}, fc);
    auto& sh = h.AddHost("server", "10.0.0.1");
    auto& ch = h.AddHost("client", "10.0.0.2");
    auto& sl = h.Catnip(sh);
    auto& cl = h.Catnip(ch);
    DemiEchoServer server(&sl, 7);
    DemiEchoClient client(&cl, Endpoint{sh.ip, 7}, 64, 100);
    EXPECT_TRUE(h.RunUntil([&] { return client.done(); }, 600 * kSecond));
    return h.sim().now();
  };
  EXPECT_NE(run(f1), run(f2));
}

// --- one-sided KV extension (src/apps/onesided_kv) ---

struct OneSidedRig {
  OneSidedRig()
      : h(),
        server_host(h.AddHost("server", "10.0.0.1", RdmaOpts())),
        client_host(h.AddHost("client", "10.0.0.2", RdmaOpts())),
        server(server_host.cpu.get(), server_host.rdma.get(), "kv", 1024) {
    qp = client_host.rdma->Connect("kv");
    h.RunUntil([&] { return qp->connected(); }, kSecond);
    (void)server.Accept();
    client = std::make_unique<OneSidedKvClient>(client_host.cpu.get(),
                                                client_host.rdma.get(), qp,
                                                server.rkey(), server.slots());
  }
  static HostOptions RdmaOpts() {
    HostOptions o;
    o.with_rdma = true;
    o.with_nic = false;
    o.with_kernel = false;
    return o;
  }
  TestHarness h;
  TestHarness::Host& server_host;
  TestHarness::Host& client_host;
  OneSidedKvServer server;
  std::shared_ptr<RdmaQp> qp;
  std::unique_ptr<OneSidedKvClient> client;
};

TEST(OneSidedKvTest, GetReturnsStoredValueWithZeroServerCpu) {
  OneSidedRig rig;
  ASSERT_TRUE(rig.server.Put("alpha", "first value").ok());
  ASSERT_TRUE(rig.server.Put("beta", "second value").ok());
  const std::uint64_t server_cpu = rig.server_host.cpu->busy_ns();
  auto v = rig.client->Get(rig.h.sim(), "alpha");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "first value");
  EXPECT_EQ(*rig.client->Get(rig.h.sim(), "beta"), "second value");
  EXPECT_EQ(rig.server_host.cpu->busy_ns(), server_cpu);  // server never ran
}

TEST(OneSidedKvTest, MissingKeyIsNotFound) {
  OneSidedRig rig;
  EXPECT_EQ(rig.client->Get(rig.h.sim(), "ghost").code(), ErrorCode::kNotFound);
}

TEST(OneSidedKvTest, UpdateVisibleToSubsequentReads) {
  OneSidedRig rig;
  ASSERT_TRUE(rig.server.Put("k", "v1").ok());
  EXPECT_EQ(*rig.client->Get(rig.h.sim(), "k"), "v1");
  ASSERT_TRUE(rig.server.Put("k", "v2-new").ok());
  EXPECT_EQ(*rig.client->Get(rig.h.sim(), "k"), "v2-new");
}

TEST(OneSidedKvTest, RemoveInvalidatesSlot) {
  OneSidedRig rig;
  ASSERT_TRUE(rig.server.Put("k", "v").ok());
  ASSERT_TRUE(rig.server.Remove("k").ok());
  EXPECT_EQ(rig.client->Get(rig.h.sim(), "k").code(), ErrorCode::kNotFound);
}

TEST(OneSidedKvTest, OversizedValuesRejectedByFixedLayout) {
  OneSidedRig rig;
  EXPECT_EQ(rig.server.Put("k", std::string(500, 'v')).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(rig.server.Put(std::string(100, 'k'), "v").code(),
            ErrorCode::kInvalidArgument);
}

// --- fault injection across the whole stack ---

TEST(FaultIntegrationTest, KvWorkloadSurvivesLossyFabric) {
  FabricConfig fabric;
  fabric.loss_rate = 0.02;
  fabric.reorder_rate = 0.05;
  fabric.seed = 31;
  TestHarness h(CostModel{}, fabric);
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  DemiKvServer server(&sl, 6379);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 100;
  wcfg.value_bytes = 512;
  KvWorkload workload(wcfg);
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    (void)server.engine().Execute(workload.LoadCommand(k));
  }
  DemiKvClient client(&cl, Endpoint{sh.ip, 6379}, &workload, 200);
  ASSERT_TRUE(h.RunUntil([&] { return client.done(); }, 3600 * kSecond));
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(client.completed(), 200u);
  EXPECT_GT(h.sim().counters().Get(Counter::kRetransmissions), 0u);
}

TEST(FaultIntegrationTest, ServerAbortResetsClientsMidWorkload) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);

  const QDesc lqd = *sl.Socket();
  ASSERT_TRUE(sl.Bind(lqd, 7000).ok());
  ASSERT_TRUE(sl.Listen(lqd).ok());
  const QToken atok = *sl.AcceptAsync(lqd);

  const QDesc cqd = *cl.Socket();
  const QToken ctok = *cl.ConnectAsync(cqd, Endpoint{sh.ip, 7000});
  ASSERT_TRUE(cl.Wait(ctok, 10 * kSecond)->status.ok());
  auto accepted = sl.Wait(atok, 10 * kSecond);
  ASSERT_TRUE(accepted->status.ok());

  // Client parks a pop; the server then hard-closes its side of the world.
  const QToken pop = *cl.Pop(cqd);
  ASSERT_TRUE(sl.Close(accepted->new_qd).ok());
  auto r = cl.Wait(pop, 60 * kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->status.ok());  // EOF or reset — never a hang, never garbage
}

TEST(FaultIntegrationTest, MixedLibosHostsShareOneFabric) {
  // One rack, three different server stacks, all reachable concurrently.
  TestHarness h;
  auto& nip_host = h.AddHost("nip", "10.0.0.1");
  auto& nap_host = h.AddHost("nap", "10.0.0.2");
  auto& posix_host = h.AddHost("posix", "10.0.0.3");
  HostOptions copts;
  copts.charges_clock = false;
  auto& client_host = h.AddHost("client", "10.0.0.9", copts);

  auto& nip = h.Catnip(nip_host);
  auto& nap = h.Catnap(nap_host);
  DemiEchoServer s1(&nip, 7);
  DemiEchoServer s2(&nap, 7);
  PosixEchoServer s3(posix_host.kernel.get(), 7, 64);

  auto& cl_nip = h.Catnip(client_host);
  auto& cl_nap = h.Catnap(client_host);
  DemiEchoClient c1(&cl_nip, Endpoint{nip_host.ip, 7}, 64, 50);
  DemiEchoClient c2(&cl_nap, Endpoint{nap_host.ip, 7}, 64, 50);
  PosixEchoClient c3(client_host.kernel.get(), Endpoint{posix_host.ip, 7}, 64, 50);

  ASSERT_TRUE(h.RunUntil([&] { return c1.done() && c2.done() && c3.done(); },
                         600 * kSecond));
  EXPECT_FALSE(c1.failed());
  EXPECT_FALSE(c2.failed());
  EXPECT_EQ(c3.completed(), 50u);
  EXPECT_EQ(s1.echoed(), 50u);
  EXPECT_EQ(s2.echoed(), 50u);
  EXPECT_EQ(s3.echoed(), 50u);
}

}  // namespace
}  // namespace demi
