// Serial SMP smoke (ctest -L smp, RUN_SERIAL): 4 sharded workers, 10^4
// connections, ramp + a measured point. Big enough to exercise ramp waves, RSS
// spread at scale, and sustained multi-core service; serial because it owns the
// machine for tens of seconds and would distort parallel test timing.

#include <gtest/gtest.h>

#include "src/load/smp_harness.h"

namespace demi {
namespace {

TEST(SmpSmoke, FourCoreTenThousandConnections) {
  SmpHarnessConfig cfg;
  cfg.workers = 4;
  cfg.connections = 10'000;
  cfg.client_stacks = 8;
  cfg.ramp_batch = 1024;
  cfg.seed = 5;
  cfg.server_request_cpu_ns = 1000;
  SmpHarness h(cfg);
  ASSERT_TRUE(h.Ramp());
  EXPECT_EQ(h.established_connections(), 10'000u);
  EXPECT_EQ(h.pool().total_accepted(), 10'000u);
  for (int w = 0; w < 4; ++w) {
    EXPECT_GT(h.shard_connections(w), 0u) << "shard " << w;
  }
  SweepPoint pt = h.RunPoint(200'000, 10 * kMillisecond, 50 * kMillisecond, "smoke");
  EXPECT_GT(pt.completed, 5'000u);
  // Quiesce: with load stopped, every in-flight push acks and drains. What must
  // remain pending is exactly one armed pop per connection plus one armed accept
  // per worker — nothing more (no leaked qtokens), nothing less (no dead loops).
  h.StopLoad();
  h.sim().RunFor(100 * kMillisecond);
  EXPECT_EQ(h.pool().total_pending_ops(), 10'000u + 4u);
}

}  // namespace
}  // namespace demi
