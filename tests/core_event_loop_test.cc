// Tests for the libevent-style adapter (§4.4 future work): callback-driven servers
// over Demikernel queues, terminal-event delivery, timers, and an echo server written
// entirely with callbacks.

#include <gtest/gtest.h>

#include "src/core/event_loop.h"
#include "src/core/harness.h"

namespace demi {
namespace {

TEST(EventLoopTest, PopCallbackFiresPerElement) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  DemiEventLoop loop(&libos);

  const QDesc qd = *libos.QueueCreate();
  std::vector<std::string> seen;
  ASSERT_TRUE(loop.WatchPop(qd, [&](QDesc, Result<SgArray> element) {
                    ASSERT_TRUE(element.ok());
                    seen.push_back(element->ToString());
                  })
                  .ok());
  for (int i = 0; i < 5; ++i) {
    (void)libos.Push(qd, SgArray::FromString("ev" + std::to_string(i)));
  }
  ASSERT_TRUE(h.RunUntil([&] { return seen.size() == 5; }, kSecond));
  EXPECT_EQ(seen[0], "ev0");
  EXPECT_EQ(seen[4], "ev4");
  EXPECT_EQ(loop.dispatched(), 5u);
}

TEST(EventLoopTest, DoubleWatchRejected) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  DemiEventLoop loop(&libos);
  const QDesc qd = *libos.QueueCreate();
  ASSERT_TRUE(loop.WatchPop(qd, [](QDesc, Result<SgArray>) {}).ok());
  EXPECT_EQ(loop.WatchPop(qd, [](QDesc, Result<SgArray>) {}).code(),
            ErrorCode::kAlreadyExists);
}

TEST(EventLoopTest, CallLaterFiresOnSimulatedClock) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  DemiEventLoop loop(&libos);
  TimeNs fired_at = -1;
  loop.CallLater(250 * kMicrosecond, [&] { fired_at = h.sim().now(); });
  h.sim().RunFor(kMillisecond);
  EXPECT_GE(fired_at, 250 * kMicrosecond);
}

TEST(EventLoopTest, CallbackEchoServer) {
  // memcached-style: the whole server is two callbacks; no explicit wait loop.
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);

  DemiEventLoop loop(&server);
  const QDesc lqd = *server.Socket();
  ASSERT_TRUE(server.Bind(lqd, 7000).ok());
  ASSERT_TRUE(server.Listen(lqd).ok());
  ASSERT_TRUE(loop.WatchAccept(lqd, [&](QDesc conn_qd) {
                    (void)loop.WatchPop(conn_qd, [&](QDesc qd, Result<SgArray> element) {
                      if (element.ok()) {
                        (void)server.Push(qd, *element);  // echo
                      }
                    });
                  })
                  .ok());

  const QDesc cqd = *client.Socket();
  const QToken ctok = *client.ConnectAsync(cqd, Endpoint{sh.ip, 7000});
  ASSERT_TRUE(client.Wait(ctok, 10 * kSecond)->status.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.BlockingPush(cqd, SgArray::FromString("m" + std::to_string(i)))
                    ->status.ok());
    auto reply = client.BlockingPop(cqd);
    ASSERT_TRUE(reply.ok() && reply->status.ok());
    EXPECT_EQ(reply->sga.ToString(), "m" + std::to_string(i));
  }
}

TEST(EventLoopTest, TerminalEventRemovesWatch) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);

  DemiEventLoop loop(&server);
  const QDesc lqd = *server.Socket();
  ASSERT_TRUE(server.Bind(lqd, 7000).ok());
  ASSERT_TRUE(server.Listen(lqd).ok());
  Status terminal = OkStatus();
  int terminal_count = 0;
  ASSERT_TRUE(loop.WatchAccept(lqd, [&](QDesc conn_qd) {
                    (void)loop.WatchPop(conn_qd, [&](QDesc, Result<SgArray> element) {
                      if (!element.ok()) {
                        terminal = element.status();
                        ++terminal_count;
                      }
                    });
                  })
                  .ok());

  const QDesc cqd = *client.Socket();
  const QToken ctok = *client.ConnectAsync(cqd, Endpoint{sh.ip, 7000});
  ASSERT_TRUE(client.Wait(ctok, 10 * kSecond)->status.ok());
  ASSERT_TRUE(client.Close(cqd).ok());  // FIN -> the server's pop terminates with EOF
  ASSERT_TRUE(h.RunUntil([&] { return terminal_count > 0; }, 30 * kSecond));
  EXPECT_EQ(terminal.code(), ErrorCode::kEndOfFile);
  // The watch is gone: no further dispatches for that queue.
  const std::uint64_t dispatched = loop.dispatched();
  h.sim().RunFor(5 * kMillisecond);
  EXPECT_EQ(terminal_count, 1);
  EXPECT_EQ(loop.dispatched(), dispatched);
}

}  // namespace
}  // namespace demi
