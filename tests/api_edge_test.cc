// Edge cases across the public API surface: empty elements, unsupported operations
// per libOS, device-queue exhaustion, CQ overflow, and other boundary behaviour.

#include <gtest/gtest.h>

#include "src/core/harness.h"

namespace demi {
namespace {

TEST(ApiEdgeTest, EmptyElementRoundTripsOverCatnip) {
  // An empty sga is a legal atomic unit (a "signal" element); the framing layer must
  // carry it and pop it as an empty element, not lose it or hang.
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);

  const QDesc lqd = *server.Socket();
  ASSERT_TRUE(server.Bind(lqd, 7000).ok());
  ASSERT_TRUE(server.Listen(lqd).ok());
  const QToken atok = *server.AcceptAsync(lqd);
  const QDesc cqd = *client.Socket();
  const QToken ctok = *client.ConnectAsync(cqd, Endpoint{sh.ip, 7000});
  ASSERT_TRUE(client.Wait(ctok, 10 * kSecond)->status.ok());
  const QDesc sqd = server.Wait(atok, 10 * kSecond)->new_qd;

  const QToken pop = *server.Pop(sqd);
  ASSERT_TRUE(client.BlockingPush(cqd, SgArray())->status.ok());
  // Follow with a non-empty element to prove stream alignment survived.
  ASSERT_TRUE(client.BlockingPush(cqd, SgArray::FromString("after-empty"))->status.ok());
  auto first = server.Wait(pop, 10 * kSecond);
  ASSERT_TRUE(first.ok() && first->status.ok());
  EXPECT_EQ(first->sga.total_bytes(), 0u);
  auto second = server.BlockingPop(sqd);
  ASSERT_TRUE(second.ok() && second->status.ok());
  EXPECT_EQ(second->sga.ToString(), "after-empty");
}

TEST(ApiEdgeTest, CatfishHasNoNetwork) {
  TestHarness h;
  HostOptions opts;
  opts.with_nic = false;
  opts.with_kernel = false;
  opts.with_block_device = true;
  auto& host = h.AddHost("storage", "10.0.0.1", opts);
  auto& libos = h.Catfish(host);
  EXPECT_EQ(libos.Socket().code(), ErrorCode::kUnsupported);
  EXPECT_EQ(libos.SocketUdp().code(), ErrorCode::kUnsupported);
}

TEST(ApiEdgeTest, CatnipHasNoStorage) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  EXPECT_EQ(libos.Open("/x").code(), ErrorCode::kUnsupported);
  EXPECT_EQ(libos.Creat("/x").code(), ErrorCode::kUnsupported);
}

TEST(ApiEdgeTest, CatnapHasNoDatagrams) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnap(host);
  EXPECT_EQ(libos.SocketUdp().code(), ErrorCode::kUnsupported);
}

TEST(ApiEdgeTest, NicQueueLeasesExhaust) {
  // Each Catnip instance leases one NIC queue from the kernel; a 2-queue NIC supports
  // exactly one libOS beside the kernel.
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");  // nic_queues = 2 by default
  (void)h.Catnip(host);                     // takes queue 1
  EXPECT_EQ(host.kernel->AllocateNicQueue().code(), ErrorCode::kResourceExhausted);
}

TEST(ApiEdgeTest, RdmaCqOverflowPutsQpInErrorState) {
  Simulation sim;
  RdmaCm cm(&sim);
  HostCpu ha(&sim, "a"), hb(&sim, "b");
  RdmaConfig cfg;
  cfg.cq_depth = 4;        // tiny CQ
  cfg.max_send_wr = 64;
  RdmaNic na(&ha, &cm, cfg), nb(&hb, &cm, cfg);
  ASSERT_TRUE(nb.Listen("x").ok());
  auto client = na.Connect("x");
  ASSERT_TRUE(sim.RunUntil([&] { return client->connected(); }, kSecond));
  auto server = nb.Accept("x");

  Buffer msg = Buffer::Allocate(8);
  ASSERT_TRUE(na.RegisterMemory(msg.shared_storage()).ok());
  Buffer recv_pool = Buffer::Allocate(64 * 16);
  ASSERT_TRUE(nb.RegisterMemory(recv_pool.shared_storage()).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(server->PostRecv(static_cast<std::uint64_t>(i),
                                 recv_pool.Slice(static_cast<std::size_t>(i) * 64, 64))
                    .ok());
  }
  // Complete more sends than the CQ can hold without ever polling it.
  for (int i = 0; i < 12; ++i) {
    (void)client->PostSend(static_cast<std::uint64_t>(100 + i), {msg});
  }
  sim.RunFor(10 * kMillisecond);
  EXPECT_TRUE(client->failed());  // CQ overrun is a fatal QP error, as on hardware
}

TEST(ApiEdgeTest, PushToListeningQueueFails) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc lqd = *libos.Socket();
  ASSERT_TRUE(libos.Bind(lqd, 7000).ok());
  ASSERT_TRUE(libos.Listen(lqd).ok());
  EXPECT_FALSE(libos.Push(lqd, SgArray::FromString("x")).ok());
  EXPECT_FALSE(libos.Pop(lqd).ok());
}

TEST(ApiEdgeTest, ConnectTwiceRejected) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc qd = *libos.Socket();
  ASSERT_TRUE(libos.Connect(qd, Endpoint{Ipv4Address::Parse("10.0.0.9"), 1}).ok());
  EXPECT_EQ(libos.Connect(qd, Endpoint{Ipv4Address::Parse("10.0.0.9"), 2}).code(),
            ErrorCode::kAlreadyConnected);
}

TEST(ApiEdgeTest, BindAfterListenOnSamePortPairRejected) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc q1 = *libos.Socket();
  ASSERT_TRUE(libos.Bind(q1, 7000).ok());
  ASSERT_TRUE(libos.Listen(q1).ok());
  const QDesc q2 = *libos.Socket();
  ASSERT_TRUE(libos.Bind(q2, 7000).ok());
  EXPECT_EQ(libos.Listen(q2).code(), ErrorCode::kAddressInUse);
}

TEST(ApiEdgeTest, WaitAnyOnEmptyTokenListTimesOut) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  auto r = libos.WaitAny({}, 10 * kMicrosecond);
  EXPECT_EQ(r.code(), ErrorCode::kTimedOut);
}

// --- Wait timeout vs fault-driven error interleavings ---

namespace waitfault {
// One connected catnip pair with a pop parked on the client; used by the Wait tests.
struct Rig {
  Rig()
      : sh(h.AddHost("server", "10.0.0.1")),
        ch(h.AddHost("client", "10.0.0.2")),
        sl(h.Catnip(sh)),
        cl(h.Catnip(ch)) {
    const QDesc lqd = *sl.Socket();
    EXPECT_TRUE(sl.Bind(lqd, 7000).ok());
    EXPECT_TRUE(sl.Listen(lqd).ok());
    const QToken atok = *sl.AcceptAsync(lqd);
    cqd = *cl.Socket();
    const QToken ctok = *cl.ConnectAsync(cqd, Endpoint{sh.ip, 7000});
    EXPECT_TRUE(cl.Wait(ctok, 10 * kSecond)->status.ok());
    sqd = sl.Wait(atok, 10 * kSecond)->new_qd;
  }
  TestHarness h;
  TestHarness::Host& sh;
  TestHarness::Host& ch;
  CatnipLibOS& sl;
  CatnipLibOS& cl;
  QDesc sqd = kInvalidQDesc;
  QDesc cqd = kInvalidQDesc;
};
}  // namespace waitfault

TEST(ApiEdgeTest, WaitTimeoutFiresBeforeScheduledFault) {
  // The deadline precedes the fault: Wait must report kTimedOut and leave the token
  // pending; a second Wait then observes the fault's typed error on the same token.
  waitfault::Rig rig;
  const QToken pop = *rig.cl.Pop(rig.cqd);
  rig.h.faults().ScheduleDeviceFailure(rig.ch.nic->fault_device(),
                                       rig.h.sim().now() + 10 * kMillisecond);
  auto early = rig.cl.Wait(pop, 2 * kMillisecond);
  EXPECT_EQ(early.code(), ErrorCode::kTimedOut);
  auto late = rig.cl.Wait(pop, kSecond);
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_TRUE(late->status.code() == ErrorCode::kDeviceFailed ||
              late->status.code() == ErrorCode::kConnectionReset)
      << late->status;
}

TEST(ApiEdgeTest, WaitFaultErrorBeatsLaterTimeout) {
  // The fault precedes the deadline: Wait must deliver the typed error as a completed
  // QResult (not a kTimedOut wait failure), and well before the deadline.
  waitfault::Rig rig;
  const QToken pop = *rig.cl.Pop(rig.cqd);
  const TimeNs start = rig.h.sim().now();
  rig.h.faults().ScheduleDeviceFailure(rig.ch.nic->fault_device(),
                                       start + 2 * kMillisecond);
  auto r = rig.cl.Wait(pop, 60 * kSecond);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->status.code() == ErrorCode::kDeviceFailed ||
              r->status.code() == ErrorCode::kConnectionReset)
      << r->status;
  EXPECT_LT(rig.h.sim().now(), start + kSecond);
}

TEST(ApiEdgeTest, WaitAnyReturnsFaultedTokenAmongPending) {
  // Two parked pops on different queues of the same libOS; the NIC death completes
  // both, and WaitAny must hand back one of them as a completed (errored) result.
  waitfault::Rig rig;
  const QDesc uqd = *rig.cl.SocketUdp();
  ASSERT_TRUE(rig.cl.Bind(uqd, 9100).ok());
  const QToken tcp_pop = *rig.cl.Pop(rig.cqd);
  const QToken udp_pop = *rig.cl.Pop(uqd);
  const QToken tokens[] = {tcp_pop, udp_pop};

  // First: with no fault, WaitAny times out and both tokens stay pending.
  auto idle = rig.cl.WaitAny(tokens, kMillisecond);
  EXPECT_EQ(idle.code(), ErrorCode::kTimedOut);

  rig.h.faults().ScheduleDeviceFailure(rig.ch.nic->fault_device(),
                                       rig.h.sim().now() + kMillisecond);
  auto first = rig.cl.WaitAny(tokens, kSecond);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->second.status.ok());
  // The other token also completed (device death flushes every queue) and remains
  // redeemable: WaitAny on the remainder returns it without stepping time.
  const QToken rest[] = {tokens[1 - first->first]};
  auto second = rig.cl.WaitAny(rest, kSecond);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(second->second.status.ok());
}

TEST(ApiEdgeTest, WaitAllCollectsTypedErrorsFromFault) {
  // WaitAll over a token set that can only finish via the fault path: a timeout
  // shorter than the fault reports kTimedOut; a second WaitAll collects every
  // result, each carrying the typed error, none lost to the first attempt.
  waitfault::Rig rig;
  const QDesc uqd = *rig.cl.SocketUdp();
  ASSERT_TRUE(rig.cl.Bind(uqd, 9200).ok());
  const QToken tokens[] = {*rig.cl.Pop(rig.cqd), *rig.cl.Pop(uqd)};

  rig.h.faults().ScheduleDeviceFailure(rig.ch.nic->fault_device(),
                                       rig.h.sim().now() + 10 * kMillisecond);
  auto early = rig.cl.WaitAll(tokens, 2 * kMillisecond);
  EXPECT_EQ(early.code(), ErrorCode::kTimedOut);
  auto all = rig.cl.WaitAll(tokens, kSecond);
  ASSERT_TRUE(all.ok()) << all.status();
  ASSERT_EQ(all->size(), 2u);
  for (const QResult& res : *all) {
    EXPECT_FALSE(res.status.ok());
    EXPECT_NE(res.status.code(), ErrorCode::kTimedOut) << res.status;
  }
}

TEST(ApiEdgeTest, SortQueueIsStableForEqualPriorities) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc inner = *libos.QueueCreate();
  ElementComparator all_equal{[](const SgArray&, const SgArray&) { return false; }, 10};
  const QDesc sorted = *libos.Sort(inner, all_equal);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(libos.BlockingPush(sorted, SgArray::FromString(std::to_string(i)))
                    ->status.ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto r = libos.BlockingPop(sorted);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->sga.ToString(), std::to_string(i)) << "FIFO among equals";
  }
}

}  // namespace
}  // namespace demi
