// Edge cases across the public API surface: empty elements, unsupported operations
// per libOS, device-queue exhaustion, CQ overflow, and other boundary behaviour.

#include <gtest/gtest.h>

#include "src/core/harness.h"

namespace demi {
namespace {

TEST(ApiEdgeTest, EmptyElementRoundTripsOverCatnip) {
  // An empty sga is a legal atomic unit (a "signal" element); the framing layer must
  // carry it and pop it as an empty element, not lose it or hang.
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& server = h.Catnip(sh);
  auto& client = h.Catnip(ch);

  const QDesc lqd = *server.Socket();
  ASSERT_TRUE(server.Bind(lqd, 7000).ok());
  ASSERT_TRUE(server.Listen(lqd).ok());
  const QToken atok = *server.AcceptAsync(lqd);
  const QDesc cqd = *client.Socket();
  const QToken ctok = *client.ConnectAsync(cqd, Endpoint{sh.ip, 7000});
  ASSERT_TRUE(client.Wait(ctok, 10 * kSecond)->status.ok());
  const QDesc sqd = server.Wait(atok, 10 * kSecond)->new_qd;

  const QToken pop = *server.Pop(sqd);
  ASSERT_TRUE(client.BlockingPush(cqd, SgArray())->status.ok());
  // Follow with a non-empty element to prove stream alignment survived.
  ASSERT_TRUE(client.BlockingPush(cqd, SgArray::FromString("after-empty"))->status.ok());
  auto first = server.Wait(pop, 10 * kSecond);
  ASSERT_TRUE(first.ok() && first->status.ok());
  EXPECT_EQ(first->sga.total_bytes(), 0u);
  auto second = server.BlockingPop(sqd);
  ASSERT_TRUE(second.ok() && second->status.ok());
  EXPECT_EQ(second->sga.ToString(), "after-empty");
}

TEST(ApiEdgeTest, CatfishHasNoNetwork) {
  TestHarness h;
  HostOptions opts;
  opts.with_nic = false;
  opts.with_kernel = false;
  opts.with_block_device = true;
  auto& host = h.AddHost("storage", "10.0.0.1", opts);
  auto& libos = h.Catfish(host);
  EXPECT_EQ(libos.Socket().code(), ErrorCode::kUnsupported);
  EXPECT_EQ(libos.SocketUdp().code(), ErrorCode::kUnsupported);
}

TEST(ApiEdgeTest, CatnipHasNoStorage) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  EXPECT_EQ(libos.Open("/x").code(), ErrorCode::kUnsupported);
  EXPECT_EQ(libos.Creat("/x").code(), ErrorCode::kUnsupported);
}

TEST(ApiEdgeTest, CatnapHasNoDatagrams) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnap(host);
  EXPECT_EQ(libos.SocketUdp().code(), ErrorCode::kUnsupported);
}

TEST(ApiEdgeTest, NicQueueLeasesExhaust) {
  // Each Catnip instance leases one NIC queue from the kernel; a 2-queue NIC supports
  // exactly one libOS beside the kernel.
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");  // nic_queues = 2 by default
  (void)h.Catnip(host);                     // takes queue 1
  EXPECT_EQ(host.kernel->AllocateNicQueue().code(), ErrorCode::kResourceExhausted);
}

TEST(ApiEdgeTest, RdmaCqOverflowPutsQpInErrorState) {
  Simulation sim;
  RdmaCm cm(&sim);
  HostCpu ha(&sim, "a"), hb(&sim, "b");
  RdmaConfig cfg;
  cfg.cq_depth = 4;        // tiny CQ
  cfg.max_send_wr = 64;
  RdmaNic na(&ha, &cm, cfg), nb(&hb, &cm, cfg);
  ASSERT_TRUE(nb.Listen("x").ok());
  auto client = na.Connect("x");
  ASSERT_TRUE(sim.RunUntil([&] { return client->connected(); }, kSecond));
  auto server = nb.Accept("x");

  Buffer msg = Buffer::Allocate(8);
  ASSERT_TRUE(na.RegisterMemory(msg.shared_storage()).ok());
  Buffer recv_pool = Buffer::Allocate(64 * 16);
  ASSERT_TRUE(nb.RegisterMemory(recv_pool.shared_storage()).ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(server->PostRecv(static_cast<std::uint64_t>(i),
                                 recv_pool.Slice(static_cast<std::size_t>(i) * 64, 64))
                    .ok());
  }
  // Complete more sends than the CQ can hold without ever polling it.
  for (int i = 0; i < 12; ++i) {
    (void)client->PostSend(static_cast<std::uint64_t>(100 + i), {msg});
  }
  sim.RunFor(10 * kMillisecond);
  EXPECT_TRUE(client->failed());  // CQ overrun is a fatal QP error, as on hardware
}

TEST(ApiEdgeTest, PushToListeningQueueFails) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc lqd = *libos.Socket();
  ASSERT_TRUE(libos.Bind(lqd, 7000).ok());
  ASSERT_TRUE(libos.Listen(lqd).ok());
  EXPECT_FALSE(libos.Push(lqd, SgArray::FromString("x")).ok());
  EXPECT_FALSE(libos.Pop(lqd).ok());
}

TEST(ApiEdgeTest, ConnectTwiceRejected) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc qd = *libos.Socket();
  ASSERT_TRUE(libos.Connect(qd, Endpoint{Ipv4Address::Parse("10.0.0.9"), 1}).ok());
  EXPECT_EQ(libos.Connect(qd, Endpoint{Ipv4Address::Parse("10.0.0.9"), 2}).code(),
            ErrorCode::kAlreadyConnected);
}

TEST(ApiEdgeTest, BindAfterListenOnSamePortPairRejected) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc q1 = *libos.Socket();
  ASSERT_TRUE(libos.Bind(q1, 7000).ok());
  ASSERT_TRUE(libos.Listen(q1).ok());
  const QDesc q2 = *libos.Socket();
  ASSERT_TRUE(libos.Bind(q2, 7000).ok());
  EXPECT_EQ(libos.Listen(q2).code(), ErrorCode::kAddressInUse);
}

TEST(ApiEdgeTest, WaitAnyOnEmptyTokenListTimesOut) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  auto r = libos.WaitAny({}, 10 * kMicrosecond);
  EXPECT_EQ(r.code(), ErrorCode::kTimedOut);
}

TEST(ApiEdgeTest, SortQueueIsStableForEqualPriorities) {
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc inner = *libos.QueueCreate();
  ElementComparator all_equal{[](const SgArray&, const SgArray&) { return false; }, 10};
  const QDesc sorted = *libos.Sort(inner, all_equal);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(libos.BlockingPush(sorted, SgArray::FromString(std::to_string(i)))
                    ->status.ok());
  }
  for (int i = 0; i < 5; ++i) {
    auto r = libos.BlockingPop(sorted);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->sga.ToString(), std::to_string(i)) << "FIFO among equals";
  }
}

}  // namespace
}  // namespace demi
