// Tests for multi-tenant sharing of the bypass device (DESIGN.md "Tenant
// isolation model"): capability-checked DMA, per-tenant token buckets, DWRR
// engine scheduling, kernel tenant minting, allocator capability coverage, and
// the RDMA-side registration/QP quotas.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "src/hw/rdma.h"
#include "src/kernel/kernel.h"
#include "src/load/hostile_tenant.h"
#include "src/memory/memory_manager.h"
#include "tests/net_test_util.h"

namespace demi {
namespace {

// Single queue by default: RSS on multi-queue NICs spreads the raw test frames
// across queues, and these tests pin one tenant-bound queue end to end.
NicConfig TenantNicConfig(int queues = 1, std::size_t ring = 256) {
  NicConfig cfg;
  cfg.num_queues = queues;
  cfg.ring_size = ring;
  return cfg;
}

// TwoHostRig with a tenant registry governing nic_a.
struct TenantRig : TwoHostRig {
  explicit TenantRig(NicConfig nic_cfg = TenantNicConfig())
      : TwoHostRig(FabricConfig{}, nic_cfg), registry(&sim) {
    nic_a.AttachTenantRegistry(&registry);
  }

  TenantId NewTenant(TenantQosConfig qos = TenantQosConfig{}, int queue = 0) {
    const TenantId t = registry.Create(std::move(qos));
    nic_a.BindQueueTenant(queue, t);
    return t;
  }

  Buffer GrantedFrame(TenantId t, std::string_view payload) {
    Buffer f = MakeTestFrame(nic_b.mac(), nic_a.mac(), payload);
    registry.GrantRegion(t, f.storage()->registration_root());
    return f;
  }

  TenantRegistry registry;
};

// ---------------------------------------------------------------------------
// Token bucket
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, RefillsDeterministicallyFromVirtualTime) {
  TokenBucket b(/*rate_per_sec=*/1000.0, /*burst=*/2.0);
  EXPECT_TRUE(b.TryTake(0));
  EXPECT_TRUE(b.TryTake(0));
  EXPECT_FALSE(b.TryTake(0));  // burst exhausted, no time has passed
  EXPECT_FALSE(b.TryTake(500 * kMicrosecond));  // half a token: not enough
  EXPECT_TRUE(b.TryTake(1 * kMillisecond));     // exactly one token refilled
  EXPECT_FALSE(b.TryTake(1 * kMillisecond));
}

TEST(TokenBucketTest, TakeUpToClipsToAvailableTokens) {
  TokenBucket b(/*rate_per_sec=*/1'000'000.0, /*burst=*/4.0);
  EXPECT_EQ(b.TakeUpTo(0, 10), 4u);
  EXPECT_EQ(b.TakeUpTo(0, 10), 0u);
  EXPECT_EQ(b.TakeUpTo(2 * kMicrosecond, 10), 2u);
}

TEST(TokenBucketTest, ZeroRateMeansUnlimited) {
  TokenBucket b(0.0, 0.0);
  EXPECT_TRUE(b.unlimited());
  EXPECT_TRUE(b.TryTake(0));
  EXPECT_EQ(b.TakeUpTo(0, 1000), 1000u);
}

// ---------------------------------------------------------------------------
// Capability-checked DMA on the NIC
// ---------------------------------------------------------------------------

TEST(TenantNicTest, UnregisteredFrameIsTypedCapabilityViolation) {
  TenantRig rig;
  const TenantId t = rig.NewTenant();
  Buffer frame = MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "stolen");

  const Status s = rig.nic_a.Transmit(0, frame);
  EXPECT_EQ(s.code(), ErrorCode::kCapabilityViolation);
  EXPECT_EQ(rig.registry.stats(t).capability_violations, 1u);
  EXPECT_EQ(rig.sim.counters().Get(Counter::kCapabilityViolations), 1u);

  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 0u);  // the DMA never happened
}

TEST(TenantNicTest, GrantedFrameReachesTheWire) {
  TenantRig rig;
  const TenantId t = rig.NewTenant();
  Buffer frame = rig.GrantedFrame(t, "legal");
  ASSERT_TRUE(rig.nic_a.Transmit(0, frame).ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  EXPECT_EQ(rig.registry.stats(t).tx_frames, 1u);
  EXPECT_EQ(rig.registry.stats(t).capability_violations, 0u);
}

TEST(TenantNicTest, BurstDropsOnlyTheBogusFrames) {
  TenantRig rig;
  const TenantId t = rig.NewTenant();
  std::vector<FrameChain> burst;
  burst.emplace_back(rig.GrantedFrame(t, "ok-1"));
  burst.emplace_back(MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "bogus"));
  burst.emplace_back(rig.GrantedFrame(t, "ok-2"));

  // All three descriptors are consumed (the device read them); only the bogus
  // one is refused at the capability check.
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, burst), 3u);
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) >= 2; }, kSecond));
  rig.sim.RunFor(kMillisecond);
  EXPECT_EQ(rig.nic_b.RxPending(0), 2u);
  EXPECT_EQ(rig.registry.stats(t).capability_violations, 1u);
  EXPECT_EQ(rig.registry.stats(t).tx_frames, 2u);
}

TEST(TenantNicTest, RxGrantMakesEchoingReceivedDataLegal) {
  TenantRig rig;
  const TenantId t = rig.NewTenant();
  // Peer -> tenant queue 0: the device DMA'd this frame into tenant memory.
  ASSERT_TRUE(rig.nic_b
                  .Transmit(0, MakeTestFrame(rig.nic_a.mac(), rig.nic_b.mac(), "req"))
                  .ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_a.RxPending(0) > 0; }, kSecond));
  auto got = rig.nic_a.PollRx(0);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(rig.registry.stats(t).rx_frames, 1u);

  // Echo the received storage back: never explicitly granted, but the device RX
  // grant makes it legal. Rewriting the header in place keeps the same storage.
  Buffer echo = *got;
  WriteEthHeader(echo.mutable_span(),
                 EthHeader{rig.nic_b.mac(), rig.nic_a.mac(), 0x88B5});
  EXPECT_TRUE(rig.nic_a.Transmit(0, echo).ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  EXPECT_EQ(rig.registry.stats(t).capability_violations, 0u);
}

// ---------------------------------------------------------------------------
// Per-tenant QoS: token buckets and DWRR
// ---------------------------------------------------------------------------

TEST(TenantNicTest, DoorbellBucketThrottlesAndRefills) {
  TenantRig rig;
  TenantQosConfig qos;
  qos.doorbells_per_sec = 1000.0;
  qos.doorbell_burst = 1.0;
  const TenantId t = rig.NewTenant(qos);

  Buffer f1 = rig.GrantedFrame(t, "a");
  Buffer f2 = rig.GrantedFrame(t, "b");
  std::vector<FrameChain> one;
  one.emplace_back(f1);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, one), 1u);  // consumes the single token
  one.clear();
  one.emplace_back(f2);
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, one), 0u);  // throttled, frame untouched
  EXPECT_EQ(rig.registry.stats(t).doorbells_throttled, 1u);
  EXPECT_EQ(rig.sim.counters().Get(Counter::kDoorbellsThrottled), 1u);

  rig.sim.RunFor(2 * kMillisecond);  // > one refill period at 1000/s
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, one), 1u);
}

TEST(TenantNicTest, DescriptorBucketClipsBurstSize) {
  TenantRig rig;
  TenantQosConfig qos;
  qos.descriptors_per_sec = 1'000'000.0;
  qos.descriptor_burst = 4.0;
  const TenantId t = rig.NewTenant(qos);

  std::vector<FrameChain> burst;
  for (int i = 0; i < 8; ++i) {
    burst.emplace_back(rig.GrantedFrame(t, "descriptor-" + std::to_string(i)));
  }
  EXPECT_EQ(rig.nic_a.TransmitBurst(0, burst), 4u);
  EXPECT_EQ(rig.registry.stats(t).descriptors_throttled, 4u);
  EXPECT_EQ(rig.sim.counters().Get(Counter::kDescriptorsThrottled), 4u);
}

TEST(TenantNicTest, DwrrSharesFollowWeights) {
  // Two flood drivers, weights 3:1, saturating the shared TX engine for a long
  // deterministic window: engine byte shares must match the weights within 10%.
  Simulation sim;
  Fabric fabric(&sim);
  HostCpu host(&sim, "shared", /*charges_clock=*/false);
  HostCpu sink_host(&sim, "sink", /*charges_clock=*/false);
  SimNic nic(&host, &fabric, MacAddress::ForHost(1), TenantNicConfig(2, 1024));
  SimNic sink(&sink_host, &fabric, MacAddress::ForHost(9), NicConfig{});
  TenantRegistry registry(&sim);
  nic.AttachTenantRegistry(&registry);

  TenantQosConfig heavy, light;
  heavy.name = "heavy";
  heavy.weight = 3;
  light.name = "light";
  light.weight = 1;
  const TenantId th = registry.Create(heavy);
  const TenantId tl = registry.Create(light);
  nic.BindQueueTenant(0, th);
  nic.BindQueueTenant(1, tl);

  HostileTenantConfig load;
  load.doorbell_rate_per_sec = 400'000.0;
  load.burst_frames = 32;  // 12.8M fps offered each vs ~10M fps engine capacity
  load.frame_bytes = 1500;
  HostileTenant a(&sim, &nic, 0, th, &registry, sink.mac(), load);
  load.seed ^= 1;
  HostileTenant b(&sim, &nic, 1, tl, &registry, sink.mac(), load);
  a.Start();
  b.Start();
  sim.RunFor(2 * kMillisecond);  // warm the backlog
  const std::uint64_t h0 = registry.stats(th).tx_bytes;
  const std::uint64_t l0 = registry.stats(tl).tx_bytes;
  sim.RunFor(20 * kMillisecond);
  a.Stop();
  b.Stop();
  const double hb = static_cast<double>(registry.stats(th).tx_bytes - h0);
  const double lb = static_cast<double>(registry.stats(tl).tx_bytes - l0);
  ASSERT_GT(hb, 0.0);
  ASSERT_GT(lb, 0.0);
  const double share = hb / (hb + lb);
  EXPECT_NEAR(share, 0.75, 0.075);  // 3/(3+1) within 10% relative
}

TEST(TenantNicTest, IsolationOffSkipsChecksAndServesFifo) {
  TenantRig rig;
  rig.registry.set_isolation_enabled(false);
  const TenantId t = rig.NewTenant();
  // Bogus frame sails through: no validation, no throttling, plain FIFO engine.
  Buffer bogus = MakeTestFrame(rig.nic_b.mac(), rig.nic_a.mac(), "unchecked");
  EXPECT_TRUE(rig.nic_a.Transmit(0, bogus).ok());
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) > 0; }, kSecond));
  EXPECT_EQ(rig.registry.stats(t).capability_violations, 0u);
  EXPECT_EQ(rig.registry.total_capability_violations(), 0u);
}

TEST(TenantNicTest, MidRunIsolationFlipDrainsFifoBacklogFirst) {
  TenantRig rig;
  rig.registry.set_isolation_enabled(false);
  const TenantId t = rig.NewTenant();
  std::vector<FrameChain> burst;
  for (int i = 0; i < 4; ++i) {
    burst.emplace_back(rig.GrantedFrame(t, "fifo-" + std::to_string(i)));
  }
  ASSERT_EQ(rig.nic_a.TransmitBurst(0, burst), 4u);
  rig.registry.set_isolation_enabled(true);  // flip with descriptors in flight
  burst.clear();
  burst.emplace_back(rig.GrantedFrame(t, "dwrr"));
  ASSERT_EQ(rig.nic_a.TransmitBurst(0, burst), 1u);
  // Nothing strands: all five frames reach the peer.
  ASSERT_TRUE(rig.sim.RunUntil([&] { return rig.nic_b.RxPending(0) >= 5; }, kSecond));
  EXPECT_EQ(rig.registry.stats(t).tx_frames, 5u);
}

// ---------------------------------------------------------------------------
// Kernel control path and allocator coverage
// ---------------------------------------------------------------------------

TEST(TenantKernelTest, MintsTenantsLeasesBoundQueuesAndGrantsMemory) {
  Simulation sim;
  Fabric fabric(&sim);
  HostCpu cpu(&sim, "host");
  SimNic nic(&cpu, &fabric, MacAddress::ForHost(1), TenantNicConfig(4));
  SimKernelConfig kcfg;
  kcfg.ip = Ipv4Address::Parse("10.0.0.1");
  SimKernel kernel(&cpu, &nic, nullptr, kcfg);

  auto tenant = kernel.CreateTenant(TenantQosConfig{.name = "app"});
  ASSERT_TRUE(tenant.ok());
  EXPECT_NE(*tenant, kNoTenant);
  EXPECT_EQ(nic.tenant_registry(), kernel.tenant_registry());

  auto queue = kernel.AllocateNicQueue(*tenant);
  ASSERT_TRUE(queue.ok());
  EXPECT_EQ(nic.queue_tenant(*queue), *tenant);
  EXPECT_FALSE(kernel.AllocateNicQueue(TenantId{999}).ok());

  Buffer blob = Buffer::Allocate(4096);
  ASSERT_TRUE(kernel.GrantTenantMemory(*tenant, blob.shared_storage()).ok());
  EXPECT_TRUE(kernel.tenant_registry()->MayAccess(
      *tenant, blob.storage()->registration_root()));
  EXPECT_FALSE(kernel.GrantTenantMemory(TenantId{999}, blob.shared_storage()).ok());
}

TEST(TenantMemoryTest, BindTenantCoversCurrentAndFutureArenas) {
  Simulation sim;
  HostCpu cpu(&sim, "host");
  TenantRegistry registry(&sim);
  const TenantId t = registry.Create(TenantQosConfig{});
  MemoryManager mm(&cpu);
  Buffer before = mm.Allocate(512);  // arena created before the bind
  mm.BindTenant(&registry, t);
  EXPECT_TRUE(registry.MayAccess(t, before.storage()->registration_root()));

  Buffer header = mm.AllocateHeader(48);     // header arena, created after bind
  Buffer big = mm.Allocate(3 * 1024 * 1024); // oversized dedicated arena
  EXPECT_TRUE(registry.MayAccess(t, header.storage()->registration_root()));
  EXPECT_TRUE(registry.MayAccess(t, big.storage()->registration_root()));

  // A whole scatter-gather frame from this allocator validates in one go.
  FrameChain chain(header);
  chain.Append(before.Slice(0, 100));
  EXPECT_TRUE(registry.ValidateFrame(t, chain));
}

// ---------------------------------------------------------------------------
// RDMA quotas (registration hoarding, QP churn)
// ---------------------------------------------------------------------------

struct RdmaTenantRig {
  RdmaTenantRig()
      : sim(), cm(&sim), host_a(&sim, "a"), host_b(&sim, "b"),
        nic_a(&host_a, &cm), nic_b(&host_b, &cm), registry(&sim) {
    nic_a.AttachTenantRegistry(&registry);
  }

  Simulation sim;
  RdmaCm cm;
  HostCpu host_a, host_b;
  RdmaNic nic_a, nic_b;
  TenantRegistry registry;
};

TEST(TenantRdmaTest, RegistrationQuotaBlocksHoardingUntilRelease) {
  RdmaTenantRig rig;
  TenantQosConfig qos;
  qos.max_registrations = 1;
  const TenantId t = rig.registry.Create(qos);

  Buffer b1 = Buffer::Allocate(64);
  Buffer b2 = Buffer::Allocate(64);
  auto r1 = rig.nic_a.RegisterMemory(t, b1.shared_storage());
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(rig.registry.MayAccess(t, b1.storage()->registration_root()));

  auto r2 = rig.nic_a.RegisterMemory(t, b2.shared_storage());
  EXPECT_EQ(r2.status().code(), ErrorCode::kResourceExhausted);
  EXPECT_EQ(rig.registry.stats(t).registrations_denied, 1u);

  ASSERT_TRUE(rig.nic_a.DeregisterMemory(*r1).ok());
  EXPECT_FALSE(rig.registry.MayAccess(t, b1.storage()->registration_root()));
  EXPECT_TRUE(rig.nic_a.RegisterMemory(t, b2.shared_storage()).ok());
}

TEST(TenantRdmaTest, QpQuotaSurvivesConnectionChurn) {
  RdmaTenantRig rig;
  TenantQosConfig qos;
  qos.max_qps = 1;
  const TenantId t = rig.registry.Create(qos);

  // Churn: dial a dead address; the refused QP must release its quota slot.
  auto dead = rig.nic_a.Connect("10.9.9.9:1", t);
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(rig.nic_a.Connect("10.9.9.9:1", t), nullptr);  // quota held
  EXPECT_GE(rig.registry.stats(t).qps_denied, 1u);
  ASSERT_TRUE(rig.sim.RunUntil([&] { return dead->failed(); }, kSecond));

  ASSERT_TRUE(rig.nic_b.Listen("10.0.0.2:7000").ok());
  auto live = rig.nic_a.Connect("10.0.0.2:7000", t);
  ASSERT_NE(live, nullptr);  // slot came back after the failure
  ASSERT_TRUE(rig.sim.RunUntil([&] { return live->connected() || live->failed(); },
                               kSecond));
  EXPECT_TRUE(live->connected());
  EXPECT_EQ(live->tenant(), t);
  EXPECT_EQ(rig.registry.stats(t).live_qps, 1u);
}

}  // namespace
}  // namespace demi
