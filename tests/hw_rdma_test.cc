// Tests for the RDMA NIC: registration requirements, SEND/RECV with completions,
// receiver-not-ready failures, undersized buffers, and one-sided READ/WRITE — the exact
// hardware behaviours §2 of the paper says applications must cope with.

#include <gtest/gtest.h>

#include "src/hw/rdma.h"

namespace demi {
namespace {

struct RdmaRig {
  RdmaRig() : sim(), cm(&sim), host_a(&sim, "a"), host_b(&sim, "b"),
              nic_a(&host_a, &cm), nic_b(&host_b, &cm) {}

  // Registers a fresh buffer of `n` bytes on `nic` and returns it.
  Buffer RegisteredBuffer(RdmaNic& nic, std::size_t n) {
    Buffer b = Buffer::Allocate(n);
    auto r = nic.RegisterMemory(b.shared_storage());
    EXPECT_TRUE(r.ok());
    return b;
  }

  // Establishes a connected QP pair (client first, server second).
  std::pair<std::shared_ptr<RdmaQp>, std::shared_ptr<RdmaQp>> ConnectPair() {
    EXPECT_TRUE(nic_b.Listen("10.0.0.2:7000").ok());
    auto client = nic_a.Connect("10.0.0.2:7000");
    EXPECT_TRUE(sim.RunUntil([&] { return client->connected() || client->failed(); },
                             kSecond));
    auto server = nic_b.Accept("10.0.0.2:7000");
    EXPECT_NE(server, nullptr);
    return {client, server};
  }

  Simulation sim;
  RdmaCm cm;
  HostCpu host_a, host_b;
  RdmaNic nic_a, nic_b;
};

TEST(RdmaTest, ConnectToNobodyFails) {
  RdmaRig rig;
  auto qp = rig.nic_a.Connect("10.9.9.9:1");
  ASSERT_TRUE(rig.sim.RunUntil([&] { return qp->failed() || qp->connected(); }, kSecond));
  EXPECT_TRUE(qp->failed());
}

TEST(RdmaTest, ConnectAcceptEstablishes) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  EXPECT_TRUE(client->connected());
  EXPECT_TRUE(server->connected());
}

TEST(RdmaTest, SendRequiresRegisteredMemory) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer unregistered = Buffer::CopyOf("no mr");
  EXPECT_EQ(client->PostSend(1, {unregistered}).code(), ErrorCode::kPermissionDenied);
}

TEST(RdmaTest, RecvRequiresRegisteredMemory) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer unregistered = Buffer::Allocate(64);
  EXPECT_EQ(server->PostRecv(1, unregistered).code(), ErrorCode::kPermissionDenied);
}

TEST(RdmaTest, SendRecvRoundTrip) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer recv_buf = rig.RegisteredBuffer(rig.nic_b, 256);
  ASSERT_TRUE(server->PostRecv(7, recv_buf).ok());

  Buffer msg = rig.RegisteredBuffer(rig.nic_a, 16);
  std::memcpy(msg.mutable_data(), "rdma says hello!", 16);
  ASSERT_TRUE(client->PostSend(3, {msg}).ok());

  std::vector<WorkCompletion> recv_wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto wcs = server->PollCq();
        recv_wcs.insert(recv_wcs.end(), wcs.begin(), wcs.end());
        return !recv_wcs.empty();
      },
      kSecond));
  ASSERT_EQ(recv_wcs.size(), 1u);
  EXPECT_EQ(recv_wcs[0].wr_id, 7u);
  EXPECT_TRUE(recv_wcs[0].status.ok());
  EXPECT_EQ(recv_wcs[0].byte_len, 16u);
  EXPECT_EQ(recv_wcs[0].payload.AsStringView(), "rdma says hello!");

  // Sender gets its completion after the hardware ack.
  std::vector<WorkCompletion> send_wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto wcs = client->PollCq();
        send_wcs.insert(send_wcs.end(), wcs.begin(), wcs.end());
        return !send_wcs.empty();
      },
      kSecond));
  EXPECT_EQ(send_wcs[0].wr_id, 3u);
  EXPECT_TRUE(send_wcs[0].status.ok());
}

TEST(RdmaTest, GatherSendConcatenatesSegments) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer recv_buf = rig.RegisteredBuffer(rig.nic_b, 64);
  ASSERT_TRUE(server->PostRecv(1, recv_buf).ok());

  Buffer a = rig.RegisteredBuffer(rig.nic_a, 3);
  Buffer b = rig.RegisteredBuffer(rig.nic_a, 3);
  std::memcpy(a.mutable_data(), "foo", 3);
  std::memcpy(b.mutable_data(), "bar", 3);
  ASSERT_TRUE(client->PostSend(2, {a, b}).ok());

  std::vector<WorkCompletion> wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto w = server->PollCq();
        wcs.insert(wcs.end(), w.begin(), w.end());
        return !wcs.empty();
      },
      kSecond));
  EXPECT_EQ(wcs[0].payload.AsStringView(), "foobar");
}

TEST(RdmaTest, ReceiverNotReadyEventuallyFailsSender) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer msg = rig.RegisteredBuffer(rig.nic_a, 8);
  ASSERT_TRUE(client->PostSend(9, {msg}).ok());  // no recv posted on the server!

  std::vector<WorkCompletion> wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto w = client->PollCq();
        wcs.insert(wcs.end(), w.begin(), w.end());
        return !wcs.empty();
      },
      10 * kSecond));
  EXPECT_EQ(wcs[0].status.code(), ErrorCode::kResourceExhausted);
  EXPECT_TRUE(client->failed());
}

TEST(RdmaTest, RnrRetrySucceedsIfBufferPostedInTime) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer msg = rig.RegisteredBuffer(rig.nic_a, 8);
  ASSERT_TRUE(client->PostSend(9, {msg}).ok());
  // Post the receive buffer while the hardware is in its RNR backoff.
  Buffer recv_buf = rig.RegisteredBuffer(rig.nic_b, 64);
  rig.sim.Schedule(30 * kMicrosecond, [&, recv_buf]() mutable {
    ASSERT_TRUE(server->PostRecv(1, recv_buf).ok());
  });
  std::vector<WorkCompletion> wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto w = server->PollCq();
        wcs.insert(wcs.end(), w.begin(), w.end());
        return !wcs.empty();
      },
      kSecond));
  EXPECT_TRUE(wcs[0].status.ok());
}

TEST(RdmaTest, UndersizedRecvBufferFailsBothSides) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer small = rig.RegisteredBuffer(rig.nic_b, 4);
  ASSERT_TRUE(server->PostRecv(1, small).ok());
  Buffer big = rig.RegisteredBuffer(rig.nic_a, 64);
  ASSERT_TRUE(client->PostSend(2, {big}).ok());

  std::vector<WorkCompletion> server_wcs, client_wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto sw = server->PollCq();
        server_wcs.insert(server_wcs.end(), sw.begin(), sw.end());
        auto cw = client->PollCq();
        client_wcs.insert(client_wcs.end(), cw.begin(), cw.end());
        return !server_wcs.empty() && !client_wcs.empty();
      },
      kSecond));
  EXPECT_FALSE(server_wcs[0].status.ok());
  EXPECT_FALSE(client_wcs[0].status.ok());
}

TEST(RdmaTest, OneSidedReadFetchesRemoteMemory) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  // Server exposes a registered region; its CPU does nothing afterwards.
  Buffer region = Buffer::Allocate(128);
  std::memcpy(region.mutable_data() + 32, "remote-value", 12);
  auto rkey = rig.nic_b.RegisterMemory(region.shared_storage());
  ASSERT_TRUE(rkey.ok());

  Buffer dest = rig.RegisteredBuffer(rig.nic_a, 12);
  const std::uint64_t server_cpu_before = rig.host_b.busy_ns();
  ASSERT_TRUE(client->PostRead(5, dest, *rkey, 32).ok());

  std::vector<WorkCompletion> wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto w = client->PollCq();
        wcs.insert(wcs.end(), w.begin(), w.end());
        return !wcs.empty();
      },
      kSecond));
  EXPECT_TRUE(wcs[0].status.ok());
  EXPECT_EQ(dest.AsStringView(), "remote-value");
  EXPECT_EQ(rig.host_b.busy_ns(), server_cpu_before);  // zero remote CPU
}

TEST(RdmaTest, OneSidedWriteDepositsRemoteMemory) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer region = Buffer::Allocate(128);
  auto rkey = rig.nic_b.RegisterMemory(region.shared_storage());
  ASSERT_TRUE(rkey.ok());

  Buffer src = rig.RegisteredBuffer(rig.nic_a, 5);
  std::memcpy(src.mutable_data(), "WRITE", 5);
  ASSERT_TRUE(client->PostWrite(6, src, *rkey, 10).ok());

  std::vector<WorkCompletion> wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto w = client->PollCq();
        wcs.insert(wcs.end(), w.begin(), w.end());
        return !wcs.empty();
      },
      kSecond));
  EXPECT_TRUE(wcs[0].status.ok());
  EXPECT_EQ(region.Slice(10, 5).AsStringView(), "WRITE");
}

TEST(RdmaTest, OneSidedAccessWithBadRkeyFails) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();
  Buffer dest = rig.RegisteredBuffer(rig.nic_a, 8);
  ASSERT_TRUE(client->PostRead(5, dest, /*rkey=*/0xDEAD, 0).ok());
  std::vector<WorkCompletion> wcs;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        auto w = client->PollCq();
        wcs.insert(wcs.end(), w.begin(), w.end());
        return !wcs.empty();
      },
      kSecond));
  EXPECT_EQ(wcs[0].status.code(), ErrorCode::kPermissionDenied);
}

TEST(RdmaTest, RegistrationChargesCostAndPinsMemory) {
  RdmaRig rig;
  Buffer b = Buffer::Allocate(1 << 20);
  const TimeNs before = rig.sim.now();
  ASSERT_TRUE(rig.nic_a.RegisterMemory(b.shared_storage()).ok());
  EXPECT_EQ(rig.sim.now() - before, rig.sim.cost().MemRegNs(1 << 20));
  EXPECT_EQ(rig.nic_a.pinned_bytes(), 1u << 20);
  EXPECT_EQ(rig.host_a.counters().Get(Counter::kMemRegistrations), 1u);
}

TEST(RdmaTest, DeregisterUnpins) {
  RdmaRig rig;
  Buffer b = Buffer::Allocate(4096);
  auto rkey = rig.nic_a.RegisterMemory(b.shared_storage());
  ASSERT_TRUE(rkey.ok());
  ASSERT_TRUE(rig.nic_a.DeregisterMemory(*rkey).ok());
  EXPECT_EQ(rig.nic_a.pinned_bytes(), 0u);
  EXPECT_FALSE(rig.nic_a.IsRegistered(b));
}

TEST(RdmaTest, DoubleRegistrationRejected) {
  RdmaRig rig;
  Buffer b = Buffer::Allocate(4096);
  ASSERT_TRUE(rig.nic_a.RegisterMemory(b.shared_storage()).ok());
  EXPECT_EQ(rig.nic_a.RegisterMemory(b.shared_storage()).code(), ErrorCode::kAlreadyExists);
}

TEST(RdmaTest, CapsReportTransportOffloadAndMemReg) {
  RdmaRig rig;
  const DeviceCaps caps = rig.nic_a.caps();
  EXPECT_TRUE(caps.kernel_bypass);
  EXPECT_TRUE(caps.transport_offload);
  EXPECT_TRUE(caps.needs_explicit_mem_reg);
  EXPECT_EQ(caps.category, "+OS features");
}

TEST(RdmaTest, SendQueueDepthEnforced) {
  RdmaConfig cfg;
  cfg.max_send_wr = 2;
  Simulation sim;
  RdmaCm cm(&sim);
  HostCpu ha(&sim, "a"), hb(&sim, "b");
  RdmaNic na(&ha, &cm, cfg), nb(&hb, &cm, cfg);
  ASSERT_TRUE(nb.Listen("x").ok());
  auto client = na.Connect("x");
  ASSERT_TRUE(sim.RunUntil([&] { return client->connected(); }, kSecond));
  Buffer msg = Buffer::Allocate(8);
  ASSERT_TRUE(na.RegisterMemory(msg.shared_storage()).ok());
  ASSERT_TRUE(client->PostSend(1, {msg}).ok());
  ASSERT_TRUE(client->PostSend(2, {msg}).ok());
  EXPECT_EQ(client->PostSend(3, {msg}).code(), ErrorCode::kResourceExhausted);
}

TEST(RdmaTest, DeregisterBusyWithPostedRecv) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();

  Buffer recv_buf = Buffer::Allocate(64);
  auto rkey = rig.nic_b.RegisterMemory(recv_buf.shared_storage());
  ASSERT_TRUE(rkey.ok());
  ASSERT_TRUE(server->PostRecv(1, recv_buf).ok());

  // The device may DMA into this region at any moment: deregistration must be
  // refused (typed, retryable) rather than silently unpinning it.
  EXPECT_EQ(rig.nic_b.DeregisterMemory(*rkey).code(), ErrorCode::kWouldBlock);

  Buffer msg = rig.RegisteredBuffer(rig.nic_a, 16);
  ASSERT_TRUE(client->PostSend(2, {msg}).ok());
  std::vector<WorkCompletion> done;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        for (auto& wc : server->PollCq()) {
          done.push_back(wc);
        }
        return !done.empty();
      },
      kSecond));

  // The recv completed; the region is no longer posted and deregisters cleanly.
  EXPECT_TRUE(rig.nic_b.DeregisterMemory(*rkey).ok());
  EXPECT_FALSE(rig.nic_b.IsRegistered(recv_buf));
}

TEST(RdmaTest, DeregisterBusyDuringOneSidedWrite) {
  RdmaRig rig;
  auto [client, server] = rig.ConnectPair();

  Buffer remote = Buffer::Allocate(64);
  auto remote_key = rig.nic_b.RegisterMemory(remote.shared_storage());
  ASSERT_TRUE(remote_key.ok());

  Buffer src = Buffer::Allocate(16);
  auto src_key = rig.nic_a.RegisterMemory(src.shared_storage());
  ASSERT_TRUE(src_key.ok());
  ASSERT_TRUE(client->PostWrite(1, src, *remote_key, 0).ok());

  // The WRITE is in flight: the source stays pinned until its completion.
  EXPECT_EQ(rig.nic_a.DeregisterMemory(*src_key).code(), ErrorCode::kWouldBlock);

  std::vector<WorkCompletion> done;
  ASSERT_TRUE(rig.sim.RunUntil(
      [&] {
        for (auto& wc : client->PollCq()) {
          done.push_back(wc);
        }
        return !done.empty();
      },
      kSecond));
  ASSERT_EQ(done.size(), 1u);
  EXPECT_TRUE(done[0].status.ok());

  EXPECT_TRUE(rig.nic_a.DeregisterMemory(*src_key).ok());
}

}  // namespace
}  // namespace demi
