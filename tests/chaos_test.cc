// Chaos suite (§4.4, §4.5): full echo and KV workloads under randomized, seeded fault
// schedules. Two invariants, checked for every seed:
//
//   1. No request is silently lost: the client either completes its full target or
//      observes an explicit failure — it never terminates early "successfully" and
//      never hangs past the virtual-time budget.
//   2. Determinism: the same seed produces bit-identical runs (final virtual time,
//      completion counts, and every fault counter), because faults are drawn from a
//      dedicated Rng and scheduled on the same virtual clock as the workload.

#include <gtest/gtest.h>

#include <tuple>

#include "src/apps/actors.h"
#include "src/common/random.h"
#include "src/core/harness.h"

namespace demi {
namespace {

// Everything observable about a chaos run; compared across runs for determinism.
using Outcome = std::tuple<TimeNs,          // final virtual time
                           bool,            // client.done()
                           bool,            // client.failed()
                           std::uint64_t,   // requests completed
                           std::uint64_t,   // faults injected
                           std::uint64_t,   // link flaps
                           std::uint64_t,   // ops failed
                           std::uint64_t>;  // packets dropped

// Draws a randomized schedule of transient faults — short link flaps on either NIC
// and healing partitions — from the given seed. The undisturbed workloads finish in
// ~2 virtual milliseconds, so every fault is packed into the first 1.5 ms to land
// mid-run; the RTO stalls the faults cause then stretch the run past the schedule.
void ScheduleChaos(TestHarness& h, TestHarness::Host& a, TestHarness::Host& b,
                   std::uint64_t seed) {
  Rng rng(seed);
  const int flaps = 2 + static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < flaps; ++i) {
    const FaultDeviceId victim =
        rng.NextBool(0.5) ? a.nic->fault_device() : b.nic->fault_device();
    const TimeNs at = 100 * kMicrosecond + rng.NextBelow(1400 * kMicrosecond);
    const TimeNs down_for = 200 * kMicrosecond + rng.NextBelow(800 * kMicrosecond);
    h.faults().ScheduleLinkFlap(victim, at, down_for);
  }
  const int partitions = 1 + static_cast<int>(rng.NextBelow(2));
  for (int i = 0; i < partitions; ++i) {
    const TimeNs at = 100 * kMicrosecond + rng.NextBelow(1400 * kMicrosecond);
    const TimeNs window = 300 * kMicrosecond + rng.NextBelow(1200 * kMicrosecond);
    h.faults().SchedulePartition(a.nic->port(), b.nic->port(), at, window);
  }
}

Outcome ReadOutcome(TestHarness& h, bool done, bool failed, std::uint64_t completed) {
  auto& c = h.sim().counters();
  return {h.sim().now(),
          done,
          failed,
          completed,
          c.Get(Counter::kFaultsInjected),
          c.Get(Counter::kLinkFlaps),
          c.Get(Counter::kOpsFailed),
          c.Get(Counter::kPacketsDropped)};
}

Outcome RunEchoChaos(std::uint64_t seed) {
  constexpr std::uint64_t kTarget = 300;
  FabricConfig fabric;
  fabric.seed = seed;
  TestHarness h(CostModel{}, fabric);
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  DemiEchoServer server(&sl, 7);
  DemiEchoClient client(&cl, Endpoint{sh.ip, 7}, 64, kTarget);
  ScheduleChaos(h, sh, ch, seed);

  const bool terminated =
      h.RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under chaos";
  // No request silently lost: full completion or an explicit failure, nothing between.
  if (client.done()) {
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
  } else {
    EXPECT_TRUE(client.failed()) << "seed " << seed;
  }
  return ReadOutcome(h, client.done(), client.failed(), client.completed());
}

Outcome RunKvChaos(std::uint64_t seed) {
  constexpr std::uint64_t kTarget = 300;
  FabricConfig fabric;
  fabric.seed = seed;
  TestHarness h(CostModel{}, fabric);
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);

  KvWorkloadConfig wcfg;
  wcfg.num_keys = 100;
  wcfg.value_bytes = 512;
  KvWorkload workload(wcfg);
  DemiKvServer server(&sl, 6379);
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    (void)server.engine().Execute(workload.LoadCommand(k));
  }
  DemiKvClient client(&cl, Endpoint{sh.ip, 6379}, &workload, kTarget);
  ScheduleChaos(h, sh, ch, seed + 0x9e3779b97f4a7c15ULL);  // decorrelate from echo

  const bool terminated =
      h.RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under chaos";
  if (client.done()) {
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
  } else {
    EXPECT_TRUE(client.failed()) << "seed " << seed;
  }
  return ReadOutcome(h, client.done(), client.failed(), client.completed());
}

constexpr std::uint64_t kSeeds[] = {1, 7, 42, 1234, 0xdeadbeef};

// --- PR 2: permanent NIC death, with and without the recovery layer -------------

constexpr std::uint16_t kEchoPort = 7;
constexpr std::uint16_t kKvPort = 6379;

// Everything observable about a NIC-death run, including the recovery counters.
using RecoveryOutcome = std::tuple<TimeNs,           // final virtual time
                                   bool,             // client.done()
                                   bool,             // client.failed()
                                   std::uint64_t,    // requests completed
                                   std::uint64_t,    // faults injected
                                   std::uint64_t,    // failovers
                                   std::uint64_t,    // retries attempted
                                   std::uint64_t>;   // retry giveups

// A seeded schedule that previously killed these workloads outright: one transient
// link flap for flavor, then a *permanent* device failure on one of the bypass NICs
// while the run is in full flight.
void ScheduleNicDeathChaos(TestHarness& h, TestHarness::Host& a, TestHarness::Host& b,
                           std::uint64_t seed) {
  Rng rng(seed ^ 0x4e1cdeadULL);
  const FaultDeviceId flap_victim =
      rng.NextBool(0.5) ? a.nic->fault_device() : b.nic->fault_device();
  h.faults().ScheduleLinkFlap(flap_victim, 100 * kMicrosecond + rng.NextBelow(500 * kMicrosecond),
                              100 * kMicrosecond + rng.NextBelow(200 * kMicrosecond));
  const FaultDeviceId death_victim =
      rng.NextBool(0.5) ? a.nic->fault_device() : b.nic->fault_device();
  const TimeNs death_at = 800 * kMicrosecond + rng.NextBelow(400 * kMicrosecond);
  h.faults().ScheduleDeviceFailure(death_victim, death_at);
}

RecoveryOutcome ReadRecoveryOutcome(TestHarness& h, bool done, bool failed,
                                    std::uint64_t completed) {
  auto& c = h.sim().counters();
  return {h.sim().now(),
          done,
          failed,
          completed,
          c.Get(Counter::kFaultsInjected),
          c.Get(Counter::kFailovers),
          c.Get(Counter::kRetriesAttempted),
          c.Get(Counter::kRetryGiveups)};
}

// Shared NIC-death topology: recovery runs give each host a dedicated kernel NIC
// (the legacy path must survive bypass death) and point the client's fallback at
// the server's kernel-stack listener; plain runs reproduce the PR 1 topology.
struct NicDeathRig {
  NicDeathRig(std::uint64_t seed, bool recovery, std::uint16_t port) {
    FabricConfig fabric;
    fabric.seed = seed;
    h = std::make_unique<TestHarness>(CostModel{}, fabric);
    HostOptions sopts;
    sopts.with_kernel_nic = recovery;
    sopts.tcp.max_retries = 4;  // detect a dead peer within virtual tens of ms
    server = &h->AddHost("server", "10.0.0.1", sopts);
    HostOptions copts = sopts;
    copts.charges_clock = false;
    client = &h->AddHost("client", "10.0.0.2", copts);
    if (recovery) {
      RecoveryConfig cfg;
      cfg.retry.attempt_timeout_ns = 1 * kMillisecond;
      cfg.retry.max_attempts = 4;
      server_libos = &h->Catnip(*server, cfg);
      cfg.fallback_remote = Endpoint{server->kernel_ip, port};
      cfg.has_fallback_remote = true;
      client_libos = &h->Catnip(*client, cfg);
    } else {
      server_libos = &h->Catnip(*server);
      client_libos = &h->Catnip(*client);
    }
  }

  std::unique_ptr<TestHarness> h;
  TestHarness::Host* server = nullptr;
  TestHarness::Host* client = nullptr;
  CatnipLibOS* server_libos = nullptr;
  CatnipLibOS* client_libos = nullptr;
};

RecoveryOutcome RunEchoNicDeath(std::uint64_t seed, bool recovery) {
  constexpr std::uint64_t kTarget = 300;
  NicDeathRig rig(seed, recovery, kEchoPort);
  DemiEchoServer server(rig.server_libos, kEchoPort);
  DemiEchoClient client(rig.client_libos, Endpoint{rig.server->ip, kEchoPort}, 64, kTarget);
  ScheduleNicDeathChaos(*rig.h, *rig.server, *rig.client, seed);

  const bool terminated =
      rig.h->RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  if (recovery) {
    // The headline invariant: zero client-visible errors on a schedule that kills
    // the bypass device for good — the session migrated to the legacy path.
    EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under NIC death";
    EXPECT_TRUE(client.done()) << "seed " << seed;
    EXPECT_FALSE(client.failed()) << "seed " << seed;
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
    EXPECT_GE(rig.h->sim().counters().Get(Counter::kFailovers), 1u) << "seed " << seed;
    // WaitAll-after-chaos sweep: every qtoken resolved; nothing hung.
    EXPECT_EQ(rig.client_libos->pending_ops(), 0u) << "seed " << seed;
  } else {
    // Without recovery the same class of schedule is fatal: either an explicit
    // typed failure (the PR 1 contract) or — when the *peer's* NIC dies with
    // nothing of ours in flight — a silent hang, since plain TCP has no
    // keepalive. Either way the workload never completes.
    EXPECT_FALSE(client.done() && !client.failed()) << "seed " << seed;
    EXPECT_LT(client.completed(), kTarget) << "seed " << seed;
  }
  return ReadRecoveryOutcome(*rig.h, client.done(), client.failed(), client.completed());
}

RecoveryOutcome RunKvNicDeath(std::uint64_t seed, bool recovery) {
  constexpr std::uint64_t kTarget = 300;
  NicDeathRig rig(seed, recovery, kKvPort);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 100;
  wcfg.value_bytes = 512;
  KvWorkload workload(wcfg);
  DemiKvServer server(rig.server_libos, kKvPort);
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    (void)server.engine().Execute(workload.LoadCommand(k));
  }
  DemiKvClient client(rig.client_libos, Endpoint{rig.server->ip, kKvPort}, &workload,
                      kTarget);
  ScheduleNicDeathChaos(*rig.h, *rig.server, *rig.client,
                        seed + 0x9e3779b97f4a7c15ULL);  // decorrelate from echo

  const bool terminated =
      rig.h->RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  if (recovery) {
    EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under NIC death";
    EXPECT_TRUE(client.done()) << "seed " << seed;
    EXPECT_FALSE(client.failed()) << "seed " << seed;
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
    EXPECT_GE(rig.h->sim().counters().Get(Counter::kFailovers), 1u) << "seed " << seed;
    EXPECT_EQ(rig.client_libos->pending_ops(), 0u) << "seed " << seed;
  } else {
    // See RunEchoNicDeath: explicit failure or a keepalive-less hang, never success.
    EXPECT_FALSE(client.done() && !client.failed()) << "seed " << seed;
    EXPECT_LT(client.completed(), kTarget) << "seed " << seed;
  }
  return ReadRecoveryOutcome(*rig.h, client.done(), client.failed(), client.completed());
}

// --- PR 5: the batched data path under chaos ------------------------------------

// Large echo messages segment into multi-frame TX bursts, so the schedule's device
// failure lands *mid-burst*: after a doorbell but before the last descriptor's wire
// time, killing the tail of a burst inside the device. Recovery must still finish
// the full target, and the WaitAll sweep must find no qtoken left pending — staged
// frames dropped at failure time may not strand their completions.
RecoveryOutcome RunBurstEchoNicDeath(std::uint64_t seed) {
  constexpr std::uint64_t kTarget = 120;
  constexpr std::size_t kMsgBytes = 8192;  // ~6 MSS segments per push
  NicDeathRig rig(seed, /*recovery=*/true, kEchoPort);
  DemiEchoServer server(rig.server_libos, kEchoPort);
  DemiEchoClient client(rig.client_libos, Endpoint{rig.server->ip, kEchoPort},
                        kMsgBytes, kTarget);
  ScheduleNicDeathChaos(*rig.h, *rig.server, *rig.client,
                        seed ^ 0x6b75727374ULL);  // decorrelate from the other runs

  const bool terminated =
      rig.h->RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": burst client hung under NIC death";
  EXPECT_TRUE(client.done()) << "seed " << seed;
  EXPECT_FALSE(client.failed()) << "seed " << seed;
  EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
  EXPECT_EQ(rig.client_libos->pending_ops(), 0u) << "seed " << seed;
  return ReadRecoveryOutcome(*rig.h, client.done(), client.failed(), client.completed());
}

TEST(ChaosTest, BurstEchoSurvivesMidBurstNicDeath) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunBurstEchoNicDeath(seed);
    EXPECT_GE(std::get<4>(first), 1u) << "seed " << seed << ": chaos never fired";
    // Mid-burst tail drops are deterministic too: same seed, same outcome, bit for bit.
    EXPECT_EQ(first, RunBurstEchoNicDeath(seed)) << "seed " << seed;
  }
}

TEST(ChaosTest, EchoSurvivesSeededFaultSchedules) {
  for (const std::uint64_t seed : kSeeds) {
    const Outcome first = RunEchoChaos(seed);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    // Bit-determinism: a rerun with the same seed reproduces the outcome exactly.
    EXPECT_EQ(first, RunEchoChaos(seed)) << "seed " << seed;
  }
}

TEST(ChaosTest, KvSurvivesSeededFaultSchedules) {
  for (const std::uint64_t seed : kSeeds) {
    const Outcome first = RunKvChaos(seed);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    EXPECT_EQ(first, RunKvChaos(seed)) << "seed " << seed;
  }
}

TEST(ChaosTest, DifferentSeedsProduceDifferentFaultSequences) {
  EXPECT_NE(RunEchoChaos(1), RunEchoChaos(2));
}

TEST(ChaosTest, EchoSurvivesNicDeathWithRecovery) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunEchoNicDeath(seed, /*recovery=*/true);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    EXPECT_EQ(first, RunEchoNicDeath(seed, /*recovery=*/true)) << "seed " << seed;
  }
}

TEST(ChaosTest, EchoFailsUnderNicDeathWithoutRecovery) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunEchoNicDeath(seed, /*recovery=*/false);
    EXPECT_EQ(std::get<5>(first), 0u) << "seed " << seed << ": failover without recovery";
    // The failure itself is bit-deterministic: same seed, same final state.
    EXPECT_EQ(first, RunEchoNicDeath(seed, /*recovery=*/false)) << "seed " << seed;
  }
}

TEST(ChaosTest, KvSurvivesNicDeathWithRecovery) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunKvNicDeath(seed, /*recovery=*/true);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    EXPECT_EQ(first, RunKvNicDeath(seed, /*recovery=*/true)) << "seed " << seed;
  }
}

TEST(ChaosTest, KvFailsUnderNicDeathWithoutRecovery) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunKvNicDeath(seed, /*recovery=*/false);
    EXPECT_EQ(std::get<5>(first), 0u) << "seed " << seed << ": failover without recovery";
    EXPECT_EQ(first, RunKvNicDeath(seed, /*recovery=*/false)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace demi
