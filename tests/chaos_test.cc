// Chaos suite (§4.4, §4.5): full echo and KV workloads under randomized, seeded fault
// schedules. Two invariants, checked for every seed:
//
//   1. No request is silently lost: the client either completes its full target or
//      observes an explicit failure — it never terminates early "successfully" and
//      never hangs past the virtual-time budget.
//   2. Determinism: the same seed produces bit-identical runs (final virtual time,
//      completion counts, and every fault counter), because faults are drawn from a
//      dedicated Rng and scheduled on the same virtual clock as the workload.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/apps/actors.h"
#include "src/common/random.h"
#include "src/core/harness.h"
#include "src/load/open_loop_runner.h"
#include "src/sim/fault_injector.h"

namespace demi {
namespace {

// Everything observable about a chaos run; compared across runs for determinism.
using Outcome = std::tuple<TimeNs,          // final virtual time
                           bool,            // client.done()
                           bool,            // client.failed()
                           std::uint64_t,   // requests completed
                           std::uint64_t,   // faults injected
                           std::uint64_t,   // link flaps
                           std::uint64_t,   // ops failed
                           std::uint64_t>;  // packets dropped

// Draws a randomized schedule of transient faults — short link flaps on either NIC
// and healing partitions — from the given seed. The undisturbed workloads finish in
// ~2 virtual milliseconds, so every fault is packed into the first 1.5 ms to land
// mid-run; the RTO stalls the faults cause then stretch the run past the schedule.
void ScheduleChaos(TestHarness& h, TestHarness::Host& a, TestHarness::Host& b,
                   std::uint64_t seed) {
  Rng rng(seed);
  const int flaps = 2 + static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < flaps; ++i) {
    const FaultDeviceId victim =
        rng.NextBool(0.5) ? a.nic->fault_device() : b.nic->fault_device();
    const TimeNs at = 100 * kMicrosecond + rng.NextBelow(1400 * kMicrosecond);
    const TimeNs down_for = 200 * kMicrosecond + rng.NextBelow(800 * kMicrosecond);
    h.faults().ScheduleLinkFlap(victim, at, down_for);
  }
  const int partitions = 1 + static_cast<int>(rng.NextBelow(2));
  for (int i = 0; i < partitions; ++i) {
    const TimeNs at = 100 * kMicrosecond + rng.NextBelow(1400 * kMicrosecond);
    const TimeNs window = 300 * kMicrosecond + rng.NextBelow(1200 * kMicrosecond);
    h.faults().SchedulePartition(a.nic->port(), b.nic->port(), at, window);
  }
}

Outcome ReadOutcome(TestHarness& h, bool done, bool failed, std::uint64_t completed) {
  auto& c = h.sim().counters();
  return {h.sim().now(),
          done,
          failed,
          completed,
          c.Get(Counter::kFaultsInjected),
          c.Get(Counter::kLinkFlaps),
          c.Get(Counter::kOpsFailed),
          c.Get(Counter::kPacketsDropped)};
}

Outcome RunEchoChaos(std::uint64_t seed) {
  constexpr std::uint64_t kTarget = 300;
  FabricConfig fabric;
  fabric.seed = seed;
  TestHarness h(CostModel{}, fabric);
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  DemiEchoServer server(&sl, 7);
  DemiEchoClient client(&cl, Endpoint{sh.ip, 7}, 64, kTarget);
  ScheduleChaos(h, sh, ch, seed);

  const bool terminated =
      h.RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under chaos";
  // No request silently lost: full completion or an explicit failure, nothing between.
  if (client.done()) {
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
  } else {
    EXPECT_TRUE(client.failed()) << "seed " << seed;
  }
  return ReadOutcome(h, client.done(), client.failed(), client.completed());
}

Outcome RunKvChaos(std::uint64_t seed) {
  constexpr std::uint64_t kTarget = 300;
  FabricConfig fabric;
  fabric.seed = seed;
  TestHarness h(CostModel{}, fabric);
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);

  KvWorkloadConfig wcfg;
  wcfg.num_keys = 100;
  wcfg.value_bytes = 512;
  KvWorkload workload(wcfg);
  DemiKvServer server(&sl, 6379);
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    (void)server.engine().Execute(workload.LoadCommand(k));
  }
  DemiKvClient client(&cl, Endpoint{sh.ip, 6379}, &workload, kTarget);
  ScheduleChaos(h, sh, ch, seed + 0x9e3779b97f4a7c15ULL);  // decorrelate from echo

  const bool terminated =
      h.RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under chaos";
  if (client.done()) {
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
  } else {
    EXPECT_TRUE(client.failed()) << "seed " << seed;
  }
  return ReadOutcome(h, client.done(), client.failed(), client.completed());
}

constexpr std::uint64_t kSeeds[] = {1, 7, 42, 1234, 0xdeadbeef};

// --- PR 2: permanent NIC death, with and without the recovery layer -------------

constexpr std::uint16_t kEchoPort = 7;
constexpr std::uint16_t kKvPort = 6379;

// Everything observable about a NIC-death run, including the recovery counters.
using RecoveryOutcome = std::tuple<TimeNs,           // final virtual time
                                   bool,             // client.done()
                                   bool,             // client.failed()
                                   std::uint64_t,    // requests completed
                                   std::uint64_t,    // faults injected
                                   std::uint64_t,    // failovers
                                   std::uint64_t,    // retries attempted
                                   std::uint64_t>;   // retry giveups

// A seeded schedule that previously killed these workloads outright: one transient
// link flap for flavor, then a *permanent* device failure on one of the bypass NICs
// while the run is in full flight.
void ScheduleNicDeathChaos(TestHarness& h, TestHarness::Host& a, TestHarness::Host& b,
                           std::uint64_t seed) {
  Rng rng(seed ^ 0x4e1cdeadULL);
  const FaultDeviceId flap_victim =
      rng.NextBool(0.5) ? a.nic->fault_device() : b.nic->fault_device();
  h.faults().ScheduleLinkFlap(flap_victim, 100 * kMicrosecond + rng.NextBelow(500 * kMicrosecond),
                              100 * kMicrosecond + rng.NextBelow(200 * kMicrosecond));
  const FaultDeviceId death_victim =
      rng.NextBool(0.5) ? a.nic->fault_device() : b.nic->fault_device();
  const TimeNs death_at = 800 * kMicrosecond + rng.NextBelow(400 * kMicrosecond);
  h.faults().ScheduleDeviceFailure(death_victim, death_at);
}

RecoveryOutcome ReadRecoveryOutcome(TestHarness& h, bool done, bool failed,
                                    std::uint64_t completed) {
  auto& c = h.sim().counters();
  return {h.sim().now(),
          done,
          failed,
          completed,
          c.Get(Counter::kFaultsInjected),
          c.Get(Counter::kFailovers),
          c.Get(Counter::kRetriesAttempted),
          c.Get(Counter::kRetryGiveups)};
}

// Shared NIC-death topology: recovery runs give each host a dedicated kernel NIC
// (the legacy path must survive bypass death) and point the client's fallback at
// the server's kernel-stack listener; plain runs reproduce the PR 1 topology.
struct NicDeathRig {
  NicDeathRig(std::uint64_t seed, bool recovery, std::uint16_t port,
              std::size_t listen_backlog = 64,
              TimeNs retry_timeout = 1 * kMillisecond, int retry_attempts = 4) {
    FabricConfig fabric;
    fabric.seed = seed;
    h = std::make_unique<TestHarness>(CostModel{}, fabric);
    HostOptions sopts;
    sopts.with_kernel_nic = recovery;
    sopts.tcp.max_retries = 4;  // detect a dead peer within virtual tens of ms
    sopts.tcp.listen_backlog = listen_backlog;
    server = &h->AddHost("server", "10.0.0.1", sopts);
    HostOptions copts = sopts;
    copts.charges_clock = false;
    client = &h->AddHost("client", "10.0.0.2", copts);
    if (recovery) {
      RecoveryConfig cfg;
      cfg.retry.attempt_timeout_ns = retry_timeout;
      cfg.retry.max_attempts = retry_attempts;
      server_libos = &h->Catnip(*server, cfg);
      cfg.fallback_remote = Endpoint{server->kernel_ip, port};
      cfg.has_fallback_remote = true;
      client_libos = &h->Catnip(*client, cfg);
    } else {
      server_libos = &h->Catnip(*server);
      client_libos = &h->Catnip(*client);
    }
  }

  std::unique_ptr<TestHarness> h;
  TestHarness::Host* server = nullptr;
  TestHarness::Host* client = nullptr;
  CatnipLibOS* server_libos = nullptr;
  CatnipLibOS* client_libos = nullptr;
};

RecoveryOutcome RunEchoNicDeath(std::uint64_t seed, bool recovery) {
  constexpr std::uint64_t kTarget = 300;
  NicDeathRig rig(seed, recovery, kEchoPort);
  DemiEchoServer server(rig.server_libos, kEchoPort);
  DemiEchoClient client(rig.client_libos, Endpoint{rig.server->ip, kEchoPort}, 64, kTarget);
  ScheduleNicDeathChaos(*rig.h, *rig.server, *rig.client, seed);

  const bool terminated =
      rig.h->RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  if (recovery) {
    // The headline invariant: zero client-visible errors on a schedule that kills
    // the bypass device for good — the session migrated to the legacy path.
    EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under NIC death";
    EXPECT_TRUE(client.done()) << "seed " << seed;
    EXPECT_FALSE(client.failed()) << "seed " << seed;
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
    EXPECT_GE(rig.h->sim().counters().Get(Counter::kFailovers), 1u) << "seed " << seed;
    // WaitAll-after-chaos sweep: every qtoken resolved; nothing hung.
    EXPECT_EQ(rig.client_libos->pending_ops(), 0u) << "seed " << seed;
  } else {
    // Without recovery the same class of schedule is fatal: either an explicit
    // typed failure (the PR 1 contract) or — when the *peer's* NIC dies with
    // nothing of ours in flight — a silent hang, since plain TCP has no
    // keepalive. Either way the workload never completes.
    EXPECT_FALSE(client.done() && !client.failed()) << "seed " << seed;
    EXPECT_LT(client.completed(), kTarget) << "seed " << seed;
  }
  return ReadRecoveryOutcome(*rig.h, client.done(), client.failed(), client.completed());
}

RecoveryOutcome RunKvNicDeath(std::uint64_t seed, bool recovery) {
  constexpr std::uint64_t kTarget = 300;
  NicDeathRig rig(seed, recovery, kKvPort);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 100;
  wcfg.value_bytes = 512;
  KvWorkload workload(wcfg);
  DemiKvServer server(rig.server_libos, kKvPort);
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    (void)server.engine().Execute(workload.LoadCommand(k));
  }
  DemiKvClient client(rig.client_libos, Endpoint{rig.server->ip, kKvPort}, &workload,
                      kTarget);
  ScheduleNicDeathChaos(*rig.h, *rig.server, *rig.client,
                        seed + 0x9e3779b97f4a7c15ULL);  // decorrelate from echo

  const bool terminated =
      rig.h->RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  if (recovery) {
    EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under NIC death";
    EXPECT_TRUE(client.done()) << "seed " << seed;
    EXPECT_FALSE(client.failed()) << "seed " << seed;
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
    EXPECT_GE(rig.h->sim().counters().Get(Counter::kFailovers), 1u) << "seed " << seed;
    EXPECT_EQ(rig.client_libos->pending_ops(), 0u) << "seed " << seed;
  } else {
    // See RunEchoNicDeath: explicit failure or a keepalive-less hang, never success.
    EXPECT_FALSE(client.done() && !client.failed()) << "seed " << seed;
    EXPECT_LT(client.completed(), kTarget) << "seed " << seed;
  }
  return ReadRecoveryOutcome(*rig.h, client.done(), client.failed(), client.completed());
}

// --- PR 5: the batched data path under chaos ------------------------------------

// Large echo messages segment into multi-frame TX bursts, so the schedule's device
// failure lands *mid-burst*: after a doorbell but before the last descriptor's wire
// time, killing the tail of a burst inside the device. Recovery must still finish
// the full target, and the WaitAll sweep must find no qtoken left pending — staged
// frames dropped at failure time may not strand their completions.
RecoveryOutcome RunBurstEchoNicDeath(std::uint64_t seed) {
  constexpr std::uint64_t kTarget = 120;
  constexpr std::size_t kMsgBytes = 8192;  // ~6 MSS segments per push
  NicDeathRig rig(seed, /*recovery=*/true, kEchoPort);
  DemiEchoServer server(rig.server_libos, kEchoPort);
  DemiEchoClient client(rig.client_libos, Endpoint{rig.server->ip, kEchoPort},
                        kMsgBytes, kTarget);
  ScheduleNicDeathChaos(*rig.h, *rig.server, *rig.client,
                        seed ^ 0x6b75727374ULL);  // decorrelate from the other runs

  const bool terminated =
      rig.h->RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": burst client hung under NIC death";
  EXPECT_TRUE(client.done()) << "seed " << seed;
  EXPECT_FALSE(client.failed()) << "seed " << seed;
  EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
  EXPECT_EQ(rig.client_libos->pending_ops(), 0u) << "seed " << seed;
  return ReadRecoveryOutcome(*rig.h, client.done(), client.failed(), client.completed());
}

TEST(ChaosTest, BurstEchoSurvivesMidBurstNicDeath) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunBurstEchoNicDeath(seed);
    EXPECT_GE(std::get<4>(first), 1u) << "seed " << seed << ": chaos never fired";
    // Mid-burst tail drops are deterministic too: same seed, same outcome, bit for bit.
    EXPECT_EQ(first, RunBurstEchoNicDeath(seed)) << "seed " << seed;
  }
}

TEST(ChaosTest, EchoSurvivesSeededFaultSchedules) {
  for (const std::uint64_t seed : kSeeds) {
    const Outcome first = RunEchoChaos(seed);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    // Bit-determinism: a rerun with the same seed reproduces the outcome exactly.
    EXPECT_EQ(first, RunEchoChaos(seed)) << "seed " << seed;
  }
}

TEST(ChaosTest, KvSurvivesSeededFaultSchedules) {
  for (const std::uint64_t seed : kSeeds) {
    const Outcome first = RunKvChaos(seed);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    EXPECT_EQ(first, RunKvChaos(seed)) << "seed " << seed;
  }
}

TEST(ChaosTest, DifferentSeedsProduceDifferentFaultSequences) {
  EXPECT_NE(RunEchoChaos(1), RunEchoChaos(2));
}

TEST(ChaosTest, EchoSurvivesNicDeathWithRecovery) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunEchoNicDeath(seed, /*recovery=*/true);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    EXPECT_EQ(first, RunEchoNicDeath(seed, /*recovery=*/true)) << "seed " << seed;
  }
}

TEST(ChaosTest, EchoFailsUnderNicDeathWithoutRecovery) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunEchoNicDeath(seed, /*recovery=*/false);
    EXPECT_EQ(std::get<5>(first), 0u) << "seed " << seed << ": failover without recovery";
    // The failure itself is bit-deterministic: same seed, same final state.
    EXPECT_EQ(first, RunEchoNicDeath(seed, /*recovery=*/false)) << "seed " << seed;
  }
}

TEST(ChaosTest, KvSurvivesNicDeathWithRecovery) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunKvNicDeath(seed, /*recovery=*/true);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    EXPECT_EQ(first, RunKvNicDeath(seed, /*recovery=*/true)) << "seed " << seed;
  }
}

TEST(ChaosTest, KvFailsUnderNicDeathWithoutRecovery) {
  for (const std::uint64_t seed : kSeeds) {
    const RecoveryOutcome first = RunKvNicDeath(seed, /*recovery=*/false);
    EXPECT_EQ(std::get<5>(first), 0u) << "seed " << seed << ": failover without recovery";
    EXPECT_EQ(first, RunKvNicDeath(seed, /*recovery=*/false)) << "seed " << seed;
  }
}

// --- PR 6: the open-loop harness under chaos ------------------------------------

// Kill one load-generator NIC mid-sweep at 10^5 connections. The 1/8 of the fleet
// behind it must die exactly once each (abort -> dead callback, no double deaths),
// the rest must keep completing, and request accounting must balance to the unit:
// every issued request either completed or is explicitly tallied as lost in flight
// with its connection — nothing silently dropped, nothing completed twice.
TEST(ChaosTest, OpenLoopFleetDrainsCleanlyWhenClientNicDiesMidSweep) {
  constexpr std::size_t kConnections = 100'000;
  OpenLoopConfig cfg;
  cfg.connections = kConnections;
  cfg.client_stacks = 8;
  cfg.server_ports = 64;
  cfg.seed = 42;
  OpenLoopRunner r(cfg);
  FaultInjector faults(&r.sim(), 42);
  const FaultDeviceId victim = r.client_nic(3).AttachFaultInjector(&faults);

  ASSERT_TRUE(r.Ramp());
  ASSERT_EQ(r.established_connections(), kConnections);

  // Device death lands inside the measurement window (warmup 2ms + 5ms).
  faults.ScheduleDeviceFailure(victim, r.sim().now() + 7 * kMillisecond);
  const SweepPoint pt =
      r.RunPoint(500'000, 2 * kMillisecond, 10 * kMillisecond);
  r.StopLoad();
  // Drain: everything issued on surviving connections completes; everything on
  // the dead stack has been tallied as lost.
  ASSERT_TRUE(r.sim().RunUntil(
      [&] { return r.completed_total() + r.lost_in_flight() >= r.issued_total(); },
      r.sim().now() + 5 * kSecond));

  EXPECT_GT(pt.completed, 0u);
  // Exactly the dead stack's share of the fleet died, exactly once each.
  EXPECT_EQ(r.unexpected_deaths(), kConnections / 8);
  EXPECT_EQ(r.established_connections(), kConnections - kConnections / 8);
  // Conservation: issued == completed + lost, with no stray response bytes — the
  // failover drain neither lost nor duplicated a completion.
  EXPECT_EQ(r.completed_total() + r.lost_in_flight(), r.issued_total());
  EXPECT_EQ(r.stray_response_bytes(), 0u);
  EXPECT_GT(r.lost_in_flight(), 0u);  // the kill landed mid-flight
  // Tenant machinery is dormant outside tenant mode: a single-owner chaos run
  // must never trip a capability check or a doorbell throttle.
  EXPECT_EQ(r.sim().counters().Get(Counter::kCapabilityViolations), 0u);
  EXPECT_EQ(r.sim().counters().Get(Counter::kDoorbellsThrottled), 0u);
}

// A fleet of concurrent echo sessions on one recovery-enabled libOS, NIC death
// mid-run: the PR 2 failover path must drain every session without losing or
// duplicating a completion — each client finishes its exact target.
RecoveryOutcome RunEchoFleetNicDeath(std::uint64_t seed) {
  constexpr std::size_t kClients = 64;
  constexpr std::uint64_t kPerClient = 12;
  // A fleet shares one libOS: the failover storm stretches op latencies well past
  // the single-session case, so the retry budget scales up with it.
  NicDeathRig rig(seed, /*recovery=*/true, kEchoPort, /*listen_backlog=*/256,
                  /*retry_timeout=*/5 * kMillisecond, /*retry_attempts=*/8);
  DemiEchoServer server(rig.server_libos, kEchoPort);
  std::vector<std::unique_ptr<DemiEchoClient>> fleet;
  fleet.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    fleet.push_back(std::make_unique<DemiEchoClient>(
        rig.client_libos, Endpoint{rig.server->ip, kEchoPort}, 64, kPerClient));
  }
  ScheduleNicDeathChaos(*rig.h, *rig.server, *rig.client, seed ^ 0xf1ee7ULL);

  auto all_terminated = [&] {
    for (const auto& c : fleet) {
      if (!c->done() && !c->failed()) {
        return false;
      }
    }
    return true;
  };
  const bool terminated = rig.h->RunUntil(all_terminated, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": fleet hung under NIC death";

  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kClients; ++i) {
    EXPECT_TRUE(fleet[i]->done()) << "seed " << seed << " client " << i;
    EXPECT_FALSE(fleet[i]->failed()) << "seed " << seed << " client " << i;
    // Exactly the target: a lost completion shows as < target (hang/failure), a
    // duplicated one as > target.
    EXPECT_EQ(fleet[i]->completed(), kPerClient) << "seed " << seed << " client " << i;
    total += fleet[i]->completed();
  }
  EXPECT_EQ(total, kClients * kPerClient) << "seed " << seed;
  // Post-drain sweep: no qtoken left pending anywhere in the fleet, and no
  // tenant enforcement fired on this single-owner device.
  EXPECT_EQ(rig.client_libos->pending_ops(), 0u) << "seed " << seed;
  EXPECT_EQ(rig.h->sim().counters().Get(Counter::kCapabilityViolations), 0u)
      << "seed " << seed;
  EXPECT_EQ(rig.h->sim().counters().Get(Counter::kDoorbellsThrottled), 0u)
      << "seed " << seed;
  return ReadRecoveryOutcome(*rig.h, terminated, false, total);
}

TEST(ChaosTest, EchoFleetSurvivesNicDeathWithRecovery) {
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
    const RecoveryOutcome first = RunEchoFleetNicDeath(seed);
    EXPECT_GE(std::get<4>(first), 1u) << "seed " << seed << ": chaos never fired";
    // Fleet-wide drain is bit-deterministic too.
    EXPECT_EQ(first, RunEchoFleetNicDeath(seed)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace demi
