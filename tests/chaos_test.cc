// Chaos suite (§4.4, §4.5): full echo and KV workloads under randomized, seeded fault
// schedules. Two invariants, checked for every seed:
//
//   1. No request is silently lost: the client either completes its full target or
//      observes an explicit failure — it never terminates early "successfully" and
//      never hangs past the virtual-time budget.
//   2. Determinism: the same seed produces bit-identical runs (final virtual time,
//      completion counts, and every fault counter), because faults are drawn from a
//      dedicated Rng and scheduled on the same virtual clock as the workload.

#include <gtest/gtest.h>

#include <tuple>

#include "src/apps/actors.h"
#include "src/common/random.h"
#include "src/core/harness.h"

namespace demi {
namespace {

// Everything observable about a chaos run; compared across runs for determinism.
using Outcome = std::tuple<TimeNs,          // final virtual time
                           bool,            // client.done()
                           bool,            // client.failed()
                           std::uint64_t,   // requests completed
                           std::uint64_t,   // faults injected
                           std::uint64_t,   // link flaps
                           std::uint64_t,   // ops failed
                           std::uint64_t>;  // packets dropped

// Draws a randomized schedule of transient faults — short link flaps on either NIC
// and healing partitions — from the given seed. The undisturbed workloads finish in
// ~2 virtual milliseconds, so every fault is packed into the first 1.5 ms to land
// mid-run; the RTO stalls the faults cause then stretch the run past the schedule.
void ScheduleChaos(TestHarness& h, TestHarness::Host& a, TestHarness::Host& b,
                   std::uint64_t seed) {
  Rng rng(seed);
  const int flaps = 2 + static_cast<int>(rng.NextBelow(3));
  for (int i = 0; i < flaps; ++i) {
    const FaultDeviceId victim =
        rng.NextBool(0.5) ? a.nic->fault_device() : b.nic->fault_device();
    const TimeNs at = 100 * kMicrosecond + rng.NextBelow(1400 * kMicrosecond);
    const TimeNs down_for = 200 * kMicrosecond + rng.NextBelow(800 * kMicrosecond);
    h.faults().ScheduleLinkFlap(victim, at, down_for);
  }
  const int partitions = 1 + static_cast<int>(rng.NextBelow(2));
  for (int i = 0; i < partitions; ++i) {
    const TimeNs at = 100 * kMicrosecond + rng.NextBelow(1400 * kMicrosecond);
    const TimeNs window = 300 * kMicrosecond + rng.NextBelow(1200 * kMicrosecond);
    h.faults().SchedulePartition(a.nic->port(), b.nic->port(), at, window);
  }
}

Outcome ReadOutcome(TestHarness& h, bool done, bool failed, std::uint64_t completed) {
  auto& c = h.sim().counters();
  return {h.sim().now(),
          done,
          failed,
          completed,
          c.Get(Counter::kFaultsInjected),
          c.Get(Counter::kLinkFlaps),
          c.Get(Counter::kOpsFailed),
          c.Get(Counter::kPacketsDropped)};
}

Outcome RunEchoChaos(std::uint64_t seed) {
  constexpr std::uint64_t kTarget = 300;
  FabricConfig fabric;
  fabric.seed = seed;
  TestHarness h(CostModel{}, fabric);
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  DemiEchoServer server(&sl, 7);
  DemiEchoClient client(&cl, Endpoint{sh.ip, 7}, 64, kTarget);
  ScheduleChaos(h, sh, ch, seed);

  const bool terminated =
      h.RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under chaos";
  // No request silently lost: full completion or an explicit failure, nothing between.
  if (client.done()) {
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
  } else {
    EXPECT_TRUE(client.failed()) << "seed " << seed;
  }
  return ReadOutcome(h, client.done(), client.failed(), client.completed());
}

Outcome RunKvChaos(std::uint64_t seed) {
  constexpr std::uint64_t kTarget = 300;
  FabricConfig fabric;
  fabric.seed = seed;
  TestHarness h(CostModel{}, fabric);
  auto& sh = h.AddHost("server", "10.0.0.1");
  HostOptions copts;
  copts.charges_clock = false;
  auto& ch = h.AddHost("client", "10.0.0.2", copts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);

  KvWorkloadConfig wcfg;
  wcfg.num_keys = 100;
  wcfg.value_bytes = 512;
  KvWorkload workload(wcfg);
  DemiKvServer server(&sl, 6379);
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    (void)server.engine().Execute(workload.LoadCommand(k));
  }
  DemiKvClient client(&cl, Endpoint{sh.ip, 6379}, &workload, kTarget);
  ScheduleChaos(h, sh, ch, seed + 0x9e3779b97f4a7c15ULL);  // decorrelate from echo

  const bool terminated =
      h.RunUntil([&] { return client.done() || client.failed(); }, 600 * kSecond);
  EXPECT_TRUE(terminated) << "seed " << seed << ": client hung under chaos";
  if (client.done()) {
    EXPECT_EQ(client.completed(), kTarget) << "seed " << seed;
  } else {
    EXPECT_TRUE(client.failed()) << "seed " << seed;
  }
  return ReadOutcome(h, client.done(), client.failed(), client.completed());
}

constexpr std::uint64_t kSeeds[] = {1, 7, 42, 1234, 0xdeadbeef};

TEST(ChaosTest, EchoSurvivesSeededFaultSchedules) {
  for (const std::uint64_t seed : kSeeds) {
    const Outcome first = RunEchoChaos(seed);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    // Bit-determinism: a rerun with the same seed reproduces the outcome exactly.
    EXPECT_EQ(first, RunEchoChaos(seed)) << "seed " << seed;
  }
}

TEST(ChaosTest, KvSurvivesSeededFaultSchedules) {
  for (const std::uint64_t seed : kSeeds) {
    const Outcome first = RunKvChaos(seed);
    EXPECT_GE(std::get<4>(first), 3u) << "seed " << seed << ": chaos never fired";
    EXPECT_EQ(first, RunKvChaos(seed)) << "seed " << seed;
  }
}

TEST(ChaosTest, DifferentSeedsProduceDifferentFaultSequences) {
  EXPECT_NE(RunEchoChaos(1), RunEchoChaos(2));
}

}  // namespace
}  // namespace demi
