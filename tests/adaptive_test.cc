// Load-adaptive path switching + fastcall control path (DESIGN.md §15).
//
// Unit layer: FlowHeat's decayed-rate arithmetic, the PathPolicy hysteresis band
// (no thrash at the band edge), the dwell guard, and the windowed promotion budget.
// Kernel layer: fastcall pricing of control ops and the one-crossing AcceptBatch
// backlog drain (bare kernel and Catnap). End to end: the churn-heavy adaptive echo
// scenario — cold flows demote and visibly return tenant flow slots, a load spike
// promotes within budget, same seed is bit-deterministic, and a NIC death racing a
// promotion still resolves every qtoken.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/harness.h"
#include "src/core/path_policy.h"
#include "src/load/adaptive_harness.h"

namespace demi {
namespace {

// --- FlowHeat ---------------------------------------------------------------------

TEST(FlowHeatTest, ConvergesToOpRate) {
  FlowHeat heat;
  heat.set_halflife(1 * kMillisecond);
  // One op every 20us for 20 halflives: the decayed rate converges to 50k ops/s.
  TimeNs now = 0;
  for (int i = 0; i < 1000; ++i) {
    now += 20 * kMicrosecond;
    heat.Record(now);
  }
  const double rate = heat.OpsPerSec(now, 1 * kMillisecond);
  EXPECT_GT(rate, 0.8 * 50000.0);
  EXPECT_LT(rate, 1.2 * 50000.0);
}

TEST(FlowHeatTest, DecaysWhenOpsStop) {
  FlowHeat heat;
  heat.set_halflife(1 * kMillisecond);
  TimeNs now = 0;
  for (int i = 0; i < 200; ++i) {
    now += 20 * kMicrosecond;
    heat.Record(now);
  }
  const double busy = heat.OpsPerSec(now, 1 * kMillisecond);
  // 10 halflives of silence: the rate collapses by ~2^10.
  const double idle = heat.OpsPerSec(now + 10 * kMillisecond, 1 * kMillisecond);
  EXPECT_LT(idle, busy / 500.0);
  EXPECT_EQ(heat.last_op(), now);  // last_op is the raw timestamp, not decayed
}

TEST(FlowHeatTest, SameSequenceSameBits) {
  FlowHeat a;
  FlowHeat b;
  a.set_halflife(1 * kMillisecond);
  b.set_halflife(1 * kMillisecond);
  TimeNs now = 0;
  for (int i = 0; i < 100; ++i) {
    now += 17 * kMicrosecond;
    a.Record(now);
    b.Record(now);
  }
  EXPECT_EQ(a.OpsPerSec(now, 1 * kMillisecond), b.OpsPerSec(now, 1 * kMillisecond));
}

// --- PathPolicy -------------------------------------------------------------------

PathPolicyConfig TestPolicy() {
  PathPolicyConfig cfg;
  cfg.enabled = true;
  cfg.promote_ops_per_sec = 50000.0;
  cfg.demote_ops_per_sec = 5000.0;
  cfg.heat_halflife_ns = 1 * kMillisecond;
  cfg.min_dwell_ns = 2 * kMillisecond;
  cfg.idle_demote_ns = 5 * kMillisecond;
  return cfg;
}

// Drives `heat` to a steady rate of ~1e9/period_ns ops/s ending at *now.
FlowHeat SteadyHeat(TimeNs period_ns, TimeNs* now) {
  FlowHeat heat;
  heat.set_halflife(1 * kMillisecond);
  *now = 0;
  for (int i = 0; i < 2000; ++i) {
    *now += period_ns;
    heat.Record(*now);
  }
  return heat;
}

TEST(PathPolicyTest, MidBandRateMovesNoFlowInEitherDirection) {
  PathPolicy policy(TestPolicy());
  TimeNs now = 0;
  // ~20k ops/s: above the demote threshold, below the promote threshold.
  const FlowHeat heat = SteadyHeat(50 * kMicrosecond, &now);
  const TimeNs since = now - 10 * kMillisecond;  // dwell long satisfied
  EXPECT_EQ(policy.Evaluate(heat, /*on_fast_path=*/true, now, since),
            PathPolicy::Decision::kStay);
  EXPECT_EQ(policy.Evaluate(heat, /*on_fast_path=*/false, now, since),
            PathPolicy::Decision::kStay);
}

TEST(PathPolicyTest, HotPromotesColdDemotes) {
  PathPolicy policy(TestPolicy());
  TimeNs now = 0;
  const FlowHeat hot = SteadyHeat(10 * kMicrosecond, &now);  // ~100k ops/s
  EXPECT_EQ(policy.Evaluate(hot, false, now, now - 10 * kMillisecond),
            PathPolicy::Decision::kPromote);
  EXPECT_EQ(policy.Evaluate(hot, true, now, now - 10 * kMillisecond),
            PathPolicy::Decision::kStay);

  TimeNs cold_now = 0;
  const FlowHeat cold = SteadyHeat(1 * kMillisecond, &cold_now);  // ~1k ops/s
  EXPECT_EQ(policy.Evaluate(cold, true, cold_now, cold_now - 10 * kMillisecond),
            PathPolicy::Decision::kDemote);
  EXPECT_EQ(policy.Evaluate(cold, false, cold_now, cold_now - 10 * kMillisecond),
            PathPolicy::Decision::kStay);
}

TEST(PathPolicyTest, DwellGuardBlocksEarlyMoves) {
  PathPolicy policy(TestPolicy());
  FlowHeat idle;  // zero heat: demote-eligible on rate alone
  idle.set_halflife(1 * kMillisecond);
  const TimeNs now = 100 * kMillisecond;
  EXPECT_EQ(policy.Evaluate(idle, true, now, now - 1 * kMillisecond),
            PathPolicy::Decision::kStay);  // dwell not served yet
  EXPECT_EQ(policy.Evaluate(idle, true, now, now - 2 * kMillisecond),
            PathPolicy::Decision::kDemote);
}

TEST(PathPolicyTest, IdleFlowDemotesEvenIfRecentlyHot) {
  PathPolicy policy(TestPolicy());
  TimeNs now = 0;
  FlowHeat heat = SteadyHeat(10 * kMicrosecond, &now);
  // 6ms of silence: rate decays AND the idle guard fires independently.
  EXPECT_EQ(policy.Evaluate(heat, true, now + 6 * kMillisecond,
                            now - 10 * kMillisecond),
            PathPolicy::Decision::kDemote);
}

TEST(PathPolicyTest, PromotionBudgetIsPerWindowAndDeterministic) {
  PathPolicyConfig cfg = TestPolicy();
  cfg.promotion_budget = 2;
  cfg.budget_window_ns = 10 * kMillisecond;
  PathPolicy policy(cfg);
  EXPECT_TRUE(policy.TryTakePromotion(1 * kMillisecond));
  EXPECT_TRUE(policy.TryTakePromotion(2 * kMillisecond));
  EXPECT_FALSE(policy.TryTakePromotion(3 * kMillisecond));  // budget burned
  EXPECT_FALSE(policy.TryTakePromotion(9 * kMillisecond));
  // Next fixed window epoch: the budget refills.
  EXPECT_TRUE(policy.TryTakePromotion(10 * kMillisecond));
  EXPECT_EQ(policy.promotions_granted(), 3u);
  EXPECT_EQ(policy.promotions_denied(), 2u);
}

TEST(PathPolicyTest, DisabledPolicyNeverMoves) {
  PathPolicyConfig cfg = TestPolicy();
  cfg.enabled = false;
  PathPolicy policy(cfg);
  TimeNs now = 0;
  const FlowHeat hot = SteadyHeat(10 * kMicrosecond, &now);
  FlowHeat idle;
  EXPECT_EQ(policy.Evaluate(hot, false, now, 0), PathPolicy::Decision::kStay);
  EXPECT_EQ(policy.Evaluate(idle, true, now, 0), PathPolicy::Decision::kStay);
}

// --- fastcall crossing + AcceptBatch (bare kernel) ---------------------------------

TEST(FastcallTest, ControlOpsUseFastcallPricingWhenEnabled) {
  TestHarness h;
  auto& server = h.AddHost("server", "10.0.0.1");
  auto& client = h.AddHost("client", "10.0.0.2");
  SimKernel& sk = *server.kernel;
  const int lfd = *sk.Socket();
  ASSERT_TRUE(sk.Bind(lfd, 7).ok());
  ASSERT_TRUE(sk.Listen(lfd).ok());

  client.kernel->SetFastcallEnabled(true);
  auto& counters = h.sim().counters();
  const std::uint64_t syscalls_before = counters.Get(Counter::kSyscalls);
  ASSERT_EQ(counters.Get(Counter::kFastcallCrossings), 0u);

  const int cfd = *client.kernel->Socket();  // data-plane setup: full syscall
  EXPECT_EQ(counters.Get(Counter::kSyscalls), syscalls_before + 1);
  ASSERT_TRUE(client.kernel->Connect(cfd, Endpoint{server.ip, 7}).ok());
  // Connect is a control op: one fastcall crossing, no new full syscall.
  EXPECT_EQ(counters.Get(Counter::kFastcallCrossings), 1u);
  EXPECT_EQ(counters.Get(Counter::kSyscalls), syscalls_before + 1);
}

TEST(FastcallTest, AcceptBatchDrainsBacklogInOneCrossing) {
  constexpr int kConns = 6;
  TestHarness h;
  auto& server = h.AddHost("server", "10.0.0.1");
  auto& client = h.AddHost("client", "10.0.0.2");
  SimKernel& sk = *server.kernel;
  const int lfd = *sk.Socket();
  ASSERT_TRUE(sk.Bind(lfd, 7).ok());
  ASSERT_TRUE(sk.Listen(lfd).ok());

  std::vector<int> cfds;
  for (int i = 0; i < kConns; ++i) {
    const int fd = *client.kernel->Socket();
    ASSERT_TRUE(client.kernel->Connect(fd, Endpoint{server.ip, 7}).ok());
    cfds.push_back(fd);
  }
  ASSERT_TRUE(h.RunUntil([&] {
    for (const int fd : cfds) {
      if (!client.kernel->ConnectSucceeded(fd)) {
        return false;
      }
    }
    return true;
  }));
  // The clients saw their SYN-ACKs; give the final ACKs time to land so every
  // connection is actually sitting in the server's accept backlog.
  h.sim().RunFor(1 * kMillisecond);
  ASSERT_TRUE(sk.AcceptReady(lfd));

  auto& counters = h.sim().counters();
  const std::uint64_t syscalls_before = counters.Get(Counter::kSyscalls);
  auto fds = sk.AcceptBatch(lfd, 64);
  ASSERT_TRUE(fds.ok());
  EXPECT_EQ(fds->size(), static_cast<std::size_t>(kConns));
  // The whole backlog drained for ONE kernel crossing.
  EXPECT_EQ(counters.Get(Counter::kSyscalls), syscalls_before + 1);
  EXPECT_EQ(counters.Get(Counter::kAcceptsBatched), static_cast<std::uint64_t>(kConns));
}

TEST(FastcallTest, CatnapAcceptStormDrainsDequeWithoutExtraCrossings) {
  constexpr int kConns = 6;
  TestHarness h;
  auto& server = h.AddHost("server", "10.0.0.1");
  auto& client = h.AddHost("client", "10.0.0.2");
  CatnapLibOS& libos = h.Catnap(server);
  const QDesc lqd = *libos.Socket();
  ASSERT_TRUE(libos.Bind(lqd, 7).ok());
  ASSERT_TRUE(libos.Listen(lqd).ok());

  std::vector<int> cfds;
  for (int i = 0; i < kConns; ++i) {
    const int fd = *client.kernel->Socket();
    ASSERT_TRUE(client.kernel->Connect(fd, Endpoint{server.ip, 7}).ok());
    cfds.push_back(fd);
  }
  ASSERT_TRUE(h.RunUntil([&] {
    for (const int fd : cfds) {
      if (!client.kernel->ConnectSucceeded(fd)) {
        return false;
      }
    }
    return true;
  }));
  // As above: wait for the final ACKs so the whole storm is in the backlog.
  h.sim().RunFor(1 * kMillisecond);

  auto& counters = h.sim().counters();
  const std::uint64_t syscalls_before = counters.Get(Counter::kSyscalls);
  for (int i = 0; i < kConns; ++i) {
    auto qd = libos.Accept(lqd);
    ASSERT_TRUE(qd.ok()) << "accept " << i << ": " << qd.status();
  }
  // First Accept batch-drained the backlog into the libOS; the rest popped the
  // cached fds with zero kernel crossings.
  EXPECT_EQ(counters.Get(Counter::kSyscalls), syscalls_before + 1);
  EXPECT_EQ(counters.Get(Counter::kAcceptsBatched), static_cast<std::uint64_t>(kConns));
}

// --- end to end: the churn-heavy adaptive echo scenario ----------------------------

AdaptiveHarnessConfig ScenarioConfig() {
  AdaptiveHarnessConfig cfg;
  cfg.hot_flows = 2;
  cfg.cold_flows = 4;
  cfg.hot_period_ns = 20 * kMicrosecond;
  cfg.cold_period_ns = 2 * kMillisecond;
  cfg.churn_waves = 8;
  cfg.churn_wave_size = 6;
  cfg.churn_period_ns = 4 * kMillisecond;
  cfg.adaptive = true;
  cfg.fastcall = true;
  cfg.policy = PathPolicyConfig{};
  cfg.max_flow_slots = 6;  // roomy: all six flows fit at connect time
  cfg.run_ns = 50 * kMillisecond;
  cfg.seed = 41;
  return cfg;
}

TEST(AdaptiveScenarioTest, ColdFlowsDemoteAndReturnFlowSlots) {
  AdaptiveEchoHarness h(ScenarioConfig());
  const AdaptiveScenarioResult r = h.Run();

  EXPECT_GT(r.hot_completed, 0u);
  EXPECT_GT(r.cold_completed, 0u);
  EXPECT_GT(r.churn_completed, 0u);
  // Every cold flow left the bypass path exactly once; the hot flows never did.
  EXPECT_GE(r.demotions, 4u);
  EXPECT_EQ(r.promotions, 0u);
  // Demotion RETURNED capacity: only the hot flows still hold bypass slots.
  EXPECT_EQ(r.live_flow_slots, 2u);
  EXPECT_GE(r.flow_slots_released, 4u);
  // Hot flows keep bypass latency; demoted flows pay the kernel path.
  EXPECT_LT(r.hot_p50_ns, r.cold_p50_ns);
  // The control path ran on fastcall pricing and batched its accepts.
  EXPECT_GT(r.fastcall_crossings, 0u);
  EXPECT_GT(r.accepts_batched, 0u);
  EXPECT_EQ(h.client_libos().pending_ops(), 0u);
}

TEST(AdaptiveScenarioTest, LoadSpikePromotesWithinBudget) {
  AdaptiveHarnessConfig cfg = ScenarioConfig();
  cfg.cold_hot_flip_ns = 25 * kMillisecond;  // every cold flow turns hot mid-run
  // A demoted flow's rounds are paced by the ~70us kernel-path RTT, so its op rate
  // tops out near 28k/s no matter how hot the offered load: the promote threshold
  // must sit below what the slow path can physically exhibit (see DESIGN.md §15).
  cfg.policy.promote_ops_per_sec = 20000.0;
  cfg.policy.promotion_budget = 2;
  cfg.policy.budget_window_ns = 1 * kSecond;  // one window covers the whole run
  AdaptiveEchoHarness h(cfg);
  const AdaptiveScenarioResult r = h.Run();

  EXPECT_GE(r.demotions, 4u);
  // Four flows want back up but the budget admits exactly two.
  EXPECT_EQ(r.promotions, 2u);
  EXPECT_EQ(h.client_libos().path_policy().promotions_granted(), 2u);
  EXPECT_GT(h.client_libos().path_policy().promotions_denied(), 0u);
  EXPECT_EQ(r.live_flow_slots, 4u);  // 2 hot + 2 promoted
  EXPECT_EQ(h.client_libos().pending_ops(), 0u);
}

TEST(AdaptiveScenarioTest, SameSeedIsBitDeterministic) {
  AdaptiveHarnessConfig cfg = ScenarioConfig();
  cfg.cold_hot_flip_ns = 25 * kMillisecond;
  std::uint64_t digest0 = 0;
  std::uint64_t digest1 = 0;
  {
    AdaptiveEchoHarness h(cfg);
    digest0 = h.Run().digest;
  }
  {
    AdaptiveEchoHarness h(cfg);
    digest1 = h.Run().digest;
  }
  EXPECT_EQ(digest0, digest1);

  cfg.seed = 42;
  AdaptiveEchoHarness h(cfg);
  EXPECT_NE(h.Run().digest, digest0);  // the digest actually sees the timeline
}

TEST(AdaptiveChaosTest, NicDeathRacingPromotionsResolvesEveryToken) {
  AdaptiveHarnessConfig cfg = ScenarioConfig();
  cfg.cold_hot_flip_ns = 10 * kMillisecond;
  AdaptiveEchoHarness h(cfg);
  // Kill the client's bypass NIC just as the first promotion redials: in-flight
  // switches must resolve through the failover machinery, not hang.
  h.harness().faults().ScheduleDeviceFailure(h.client_host().nic->fault_device(),
                                             10 * kMillisecond + 50 * kMicrosecond);
  const AdaptiveScenarioResult r = h.Run();

  EXPECT_GT(r.hot_completed, 0u);
  EXPECT_GT(r.cold_completed, 0u);
  // The hot flows were on the bypass path when it died: they failed over.
  EXPECT_GE(h.harness().sim().counters().Get(Counter::kFailovers), 1u);
  EXPECT_EQ(h.harness().sim().counters().Get(Counter::kRetryGiveups), 0u);
  // Every qtoken resolved typed — nothing left pending after the drain.
  EXPECT_EQ(h.client_libos().pending_ops(), 0u);
}

}  // namespace
}  // namespace demi
