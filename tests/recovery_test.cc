// Recovery subsystem tests (PR 2): deadline-aware retry policy, circuit breaker,
// health monitor, replay log, session control frames — plus end-to-end failover:
// a recovery-enabled Catnip session survives permanent NIC death by migrating to
// the legacy-kernel path, replays the unacknowledged suffix exactly once, keeps
// Wait*/Blocking* bounded, and re-promotes to the fast path when a flapped link
// heals. Catfish gets the same retry layer for transient device errors.
//
// Everything is seeded and rides the virtual clock: reruns are bit-deterministic.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/apps/actors.h"
#include "src/common/byte_order.h"
#include "src/common/random.h"
#include "src/core/harness.h"
#include "src/core/recovery.h"
#include "src/sim/fault_injector.h"

namespace demi {
namespace {

constexpr std::uint16_t kEchoPort = 7;

// --- RetryPolicy ----------------------------------------------------------------

TEST(RetryPolicyTest, AttemptZeroFiresImmediately) {
  RetryPolicy policy;
  Rng rng(3);
  EXPECT_EQ(policy.BackoffBeforeAttempt(0, rng), 0);
  EXPECT_EQ(policy.BackoffBeforeAttempt(-1, rng), 0);
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.initial_backoff_ns = 100;
  policy.multiplier = 2.0;
  policy.max_backoff_ns = 1000;
  policy.jitter = 0.0;  // deterministic values for exact comparison
  Rng rng(3);
  EXPECT_EQ(policy.BackoffBeforeAttempt(1, rng), 100);
  EXPECT_EQ(policy.BackoffBeforeAttempt(2, rng), 200);
  EXPECT_EQ(policy.BackoffBeforeAttempt(3, rng), 400);
  EXPECT_EQ(policy.BackoffBeforeAttempt(4, rng), 800);
  EXPECT_EQ(policy.BackoffBeforeAttempt(5, rng), 1000);   // capped
  EXPECT_EQ(policy.BackoffBeforeAttempt(50, rng), 1000);  // stays capped
}

TEST(RetryPolicyTest, JitterIsBoundedAndSeedDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff_ns = 1000;
  policy.max_backoff_ns = 1000000;
  policy.jitter = 0.2;
  Rng a(77);
  Rng b(77);
  for (int attempt = 1; attempt < 8; ++attempt) {
    Rng probe(77);
    RetryPolicy no_jitter = policy;
    no_jitter.jitter = 0.0;
    const TimeNs base = no_jitter.BackoffBeforeAttempt(attempt, probe);
    const TimeNs x = policy.BackoffBeforeAttempt(attempt, a);
    EXPECT_GE(x, static_cast<TimeNs>(0.8 * static_cast<double>(base)));
    EXPECT_LE(x, static_cast<TimeNs>(1.2 * static_cast<double>(base)) + 1);
    // Same seed, same draw index -> identical jittered schedule.
    EXPECT_EQ(x, policy.BackoffBeforeAttempt(attempt, b));
  }
}

// --- CircuitBreaker -------------------------------------------------------------

TEST(CircuitBreakerTest, TripsAtThresholdExactlyOnce) {
  CircuitBreaker breaker(2);
  EXPECT_FALSE(breaker.tripped());
  EXPECT_FALSE(breaker.RecordExhaustion());  // 1 of 2
  EXPECT_TRUE(breaker.RecordExhaustion());   // trips now
  EXPECT_TRUE(breaker.tripped());
  EXPECT_FALSE(breaker.RecordExhaustion());  // already tripped: not counted again
}

TEST(CircuitBreakerTest, SuccessClosesTheBreaker) {
  CircuitBreaker breaker(1);
  EXPECT_TRUE(breaker.RecordExhaustion());
  EXPECT_TRUE(breaker.tripped());
  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.tripped());
  EXPECT_EQ(breaker.consecutive_exhaustions(), 0);
  EXPECT_TRUE(breaker.RecordExhaustion());  // trips again from a clean slate
}

// --- HealthMonitor --------------------------------------------------------------

TEST(HealthMonitorTest, TracksHealthyDegradedDead) {
  HealthMonitor mon;
  EXPECT_EQ(mon.HealthyFor(50), 0);  // nothing observed yet
  mon.Observe(/*link_up=*/true, /*failed=*/false, 100);
  EXPECT_EQ(mon.health(), DeviceHealth::kHealthy);
  EXPECT_EQ(mon.HealthyFor(150), 50);
  EXPECT_TRUE(mon.AsStatus().ok());

  mon.Observe(/*link_up=*/false, /*failed=*/false, 200);
  EXPECT_EQ(mon.health(), DeviceHealth::kDegraded);
  EXPECT_EQ(mon.HealthyFor(250), 0);
  EXPECT_EQ(mon.AsStatus().code(), ErrorCode::kDegraded);

  // Healthy again: the continuous-healthy clock restarts at the transition.
  mon.Observe(/*link_up=*/true, /*failed=*/false, 300);
  EXPECT_EQ(mon.health(), DeviceHealth::kHealthy);
  EXPECT_EQ(mon.HealthyFor(450), 150);

  // Device death is permanent, regardless of later link state.
  mon.Observe(/*link_up=*/true, /*failed=*/true, 500);
  EXPECT_EQ(mon.health(), DeviceHealth::kDead);
  mon.Observe(/*link_up=*/true, /*failed=*/false, 600);
  EXPECT_EQ(mon.health(), DeviceHealth::kDead);
  EXPECT_EQ(mon.AsStatus().code(), ErrorCode::kDeviceFailed);
  EXPECT_EQ(mon.HealthyFor(700), 0);
}

// --- ReplayLog ------------------------------------------------------------------

TEST(ReplayLogTest, AppendsUntilFullAndEvictsBySeq) {
  ReplayLog log(3);
  EXPECT_TRUE(log.empty());
  log.Append(1, SgArray::FromString("a"));
  log.Append(2, SgArray::FromString("b"));
  log.Append(3, SgArray::FromString("c"));
  EXPECT_TRUE(log.full());
  log.EvictThroughSeq(2);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries().front().seq, 3u);
  log.EvictThroughSeq(100);
  EXPECT_TRUE(log.empty());
}

TEST(ReplayLogTest, EvictAckedDropsOnlyWrittenPrefix) {
  ReplayLog log(8);
  log.Append(1, SgArray::FromString("a"));
  log.Append(2, SgArray::FromString("b"));
  log.Append(3, SgArray::FromString("c"));
  ReplayLog::Entry* first = log.NextUnwritten();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->seq, 1u);
  first->written = true;
  first->end_offset = 10;
  // Entry 2 is unwritten: acked offset past entry 1 drops exactly entry 1.
  log.EvictAcked(50);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.entries().front().seq, 2u);
  EXPECT_EQ(log.NextUnwritten()->seq, 2u);
}

TEST(ReplayLogTest, MarkAllUnwrittenResetsForReplay) {
  ReplayLog log(8);
  log.Append(5, SgArray::FromString("x"));
  log.Append(6, SgArray::FromString("y"));
  for (ReplayLog::Entry& e : log.entries()) {
    e.written = true;
    e.end_offset = 99;
  }
  EXPECT_EQ(log.NextUnwritten(), nullptr);
  log.MarkAllUnwritten();
  ASSERT_NE(log.NextUnwritten(), nullptr);
  EXPECT_EQ(log.NextUnwritten()->seq, 5u);
  EXPECT_EQ(log.entries().front().end_offset, 0u);
  // Nothing written: transport acks evict nothing.
  log.EvictAcked(1000);
  EXPECT_EQ(log.size(), 2u);
}

// --- session control frames -----------------------------------------------------

TEST(HelloFrameTest, EncodeParseRoundTrip) {
  for (const bool is_ack : {false, true}) {
    HelloFrame hello;
    hello.is_ack = is_ack;
    hello.session_id = 0x1234567890abcdefull;
    hello.last_rx_seq = 42;
    auto parsed = ParseHello(SgArray(EncodeHello(hello)));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->is_ack, is_ack);
    EXPECT_EQ(parsed->session_id, hello.session_id);
    EXPECT_EQ(parsed->last_rx_seq, 42u);
  }
}

TEST(HelloFrameTest, PingRoundTripsAsItsOwnKind) {
  HelloFrame ping;
  ping.is_ping = true;
  ping.session_id = 9;
  ping.last_rx_seq = 3;
  auto parsed = ParseHello(SgArray(EncodeHello(ping)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_ping);
  EXPECT_FALSE(parsed->is_ack);
  EXPECT_EQ(parsed->session_id, 9u);
  EXPECT_EQ(parsed->last_rx_seq, 3u);
}

TEST(HelloFrameTest, RejectsNonControlBodies) {
  // Same length as a HELLO but wrong leading sequence/magic.
  EXPECT_FALSE(ParseHello(SgArray::FromString(std::string(32, 'a'))).has_value());
  EXPECT_FALSE(ParseHello(SgArray::FromString("short")).has_value());
}

TEST(SeqHeaderTest, ReadsAndStripsThePrefix) {
  Buffer hdr = Buffer::Allocate(kRecoverySeqHeader);
  ByteWriter w(hdr.mutable_span());
  w.U64(777);
  SgArray body(std::move(hdr));
  body.Append(Buffer::CopyOf(std::string_view("payload")));

  std::uint64_t seq = 0;
  ASSERT_TRUE(ReadSeqHeader(body, &seq));
  EXPECT_EQ(seq, 777u);
  EXPECT_EQ(StripBytes(body, kRecoverySeqHeader).ToString(), "payload");
  EXPECT_EQ(StripBytes(body, 0).ToString(), body.ToString());

  EXPECT_FALSE(ReadSeqHeader(SgArray::FromString("1234567"), &seq));  // 7 bytes: runt
}

// --- fault injector: auto-recovering variants -----------------------------------

TEST(TransientFaultTest, QpErrorFiresAndRestoresOnSchedule) {
  Simulation sim;
  FaultInjector faults(&sim, 9);
  std::vector<FaultEvent> events;
  const FaultDeviceId dev =
      faults.Register("rnic", [&](const FaultEvent& e) { events.push_back(e); });
  faults.ScheduleTransientQpError(dev, 100 * kMicrosecond, 50 * kMicrosecond);
  sim.RunFor(1 * kMillisecond);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultKind::kQpError);
  EXPECT_EQ(events[0].at, 100 * kMicrosecond);
  EXPECT_EQ(events[1].kind, FaultKind::kQpRestored);
  EXPECT_EQ(events[1].at, 150 * kMicrosecond);
}

TEST(TransientFaultTest, RegExhaustionRestoresPullSideState) {
  Simulation sim;
  FaultInjector faults(&sim, 9);
  std::vector<FaultKind> kinds;
  const FaultDeviceId dev =
      faults.Register("rnic", [&](const FaultEvent& e) { kinds.push_back(e.kind); });
  EXPECT_FALSE(faults.reg_exhausted(dev));
  faults.ScheduleTransientRegExhaustion(dev, 10 * kMicrosecond, 20 * kMicrosecond);
  ASSERT_TRUE(sim.RunUntil([&] { return faults.reg_exhausted(dev); }, 1 * kMillisecond));
  ASSERT_TRUE(sim.RunUntil([&] { return !faults.reg_exhausted(dev); }, 1 * kMillisecond));
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], FaultKind::kRegExhausted);
  EXPECT_EQ(kinds[1], FaultKind::kRegRestored);
}

// --- Catnip failover: end to end ------------------------------------------------

// Two hosts with dedicated kernel NICs; recovery-enabled Catnip on both sides. The
// client's legacy fallback targets the server's kernel-stack listener.
struct RecoveryEchoRig {
  RecoveryEchoRig(std::uint64_t fabric_seed, const RecoveryConfig& base,
                  TcpConfig tcp = TcpConfig{}) {
    FabricConfig fabric;
    fabric.seed = fabric_seed;
    h = std::make_unique<TestHarness>(CostModel{}, fabric);
    HostOptions sopts;
    sopts.with_kernel_nic = true;
    sopts.tcp = tcp;
    server_host = &h->AddHost("server", "10.0.0.1", sopts);
    HostOptions copts = sopts;
    copts.charges_clock = false;
    client_host = &h->AddHost("client", "10.0.0.2", copts);
    server_libos = &h->Catnip(*server_host, base);
    RecoveryConfig client_cfg = base;
    client_cfg.fallback_remote = Endpoint{server_host->kernel_ip, kEchoPort};
    client_cfg.has_fallback_remote = true;
    client_libos = &h->Catnip(*client_host, client_cfg);
  }

  std::unique_ptr<TestHarness> h;
  TestHarness::Host* server_host = nullptr;
  TestHarness::Host* client_host = nullptr;
  CatnipLibOS* server_libos = nullptr;
  CatnipLibOS* client_libos = nullptr;
};

TEST(FailoverTest, EchoCompletesAcrossClientNicDeath) {
  constexpr std::uint64_t kTarget = 200;
  RecoveryEchoRig rig(21, RecoveryConfig{});
  DemiEchoServer server(rig.server_libos, kEchoPort);
  DemiEchoClient client(rig.client_libos, Endpoint{rig.server_host->ip, kEchoPort}, 64,
                        kTarget);
  rig.h->faults().ScheduleDeviceFailure(rig.client_host->nic->fault_device(),
                                        500 * kMicrosecond);

  ASSERT_TRUE(rig.h->RunUntil([&] { return client.done() || client.failed(); },
                              60 * kSecond));
  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(client.completed(), kTarget);
  auto& counters = rig.h->sim().counters();
  EXPECT_GE(counters.Get(Counter::kFailovers), 1u);
  EXPECT_EQ(counters.Get(Counter::kRetryGiveups), 0u);
  // No hung qtokens: the client tore down cleanly after the failover.
  EXPECT_EQ(rig.client_libos->pending_ops(), 0u);
}

TEST(FailoverTest, EchoCompletesAcrossServerNicDeath) {
  constexpr std::uint64_t kTarget = 200;
  RecoveryConfig cfg;
  cfg.retry.attempt_timeout_ns = 1 * kMillisecond;
  cfg.retry.max_attempts = 3;
  TcpConfig tcp;
  tcp.max_retries = 4;  // the dead server is detected in ~tens of virtual ms
  RecoveryEchoRig rig(22, cfg, tcp);
  DemiEchoServer server(rig.server_libos, kEchoPort);
  DemiEchoClient client(rig.client_libos, Endpoint{rig.server_host->ip, kEchoPort}, 64,
                        kTarget);
  rig.h->faults().ScheduleDeviceFailure(rig.server_host->nic->fault_device(),
                                        500 * kMicrosecond);

  ASSERT_TRUE(rig.h->RunUntil([&] { return client.done() || client.failed(); },
                              60 * kSecond));
  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(client.completed(), kTarget);
  EXPECT_GE(rig.h->sim().counters().Get(Counter::kFailovers), 1u);
  EXPECT_EQ(rig.client_libos->pending_ops(), 0u);
}

TEST(FailoverTest, OpsInFlightDuringWaitAnyResolveAfterFailover) {
  RecoveryEchoRig rig(23, RecoveryConfig{});
  DemiEchoServer server(rig.server_libos, kEchoPort);
  LibOS& cl = *rig.client_libos;

  const QDesc qd = *cl.Socket();
  const QToken connect_token = *cl.ConnectAsync(qd, Endpoint{rig.server_host->ip, kEchoPort});
  auto connected = cl.Wait(connect_token, 1 * kSecond);
  ASSERT_TRUE(connected.ok() && connected->status.ok()) << connected.status();

  // One clean round trip, then kill the bypass NIC and issue ops mid-outage.
  ASSERT_TRUE(cl.Wait(*cl.Push(qd, SgArray::FromString("warm")), 1 * kSecond)->status.ok());
  auto warm = cl.Wait(*cl.Pop(qd), 1 * kSecond);
  ASSERT_TRUE(warm.ok() && warm->status.ok());
  EXPECT_EQ(warm->sga.ToString(), "warm");

  rig.h->faults().ScheduleDeviceFailure(rig.client_host->nic->fault_device(),
                                        rig.h->sim().now() + 5 * kMicrosecond);
  rig.h->sim().RunFor(20 * kMicrosecond);  // the outage is now in progress

  const QToken push_token = *cl.Push(qd, SgArray::FromString("across-the-failover"));
  const QToken pop_token = *cl.Pop(qd);
  const QToken tokens[] = {push_token, pop_token};
  auto any = cl.WaitAny(tokens, 10 * kSecond);
  ASSERT_TRUE(any.ok()) << any.status();
  EXPECT_EQ(any->first, 0u);  // the push resolves first (at replay-log admission)
  EXPECT_TRUE(any->second.status.ok()) << any->second.status;

  auto echoed = cl.Wait(pop_token, 10 * kSecond);
  ASSERT_TRUE(echoed.ok() && echoed->status.ok()) << echoed.status();
  EXPECT_EQ(echoed->sga.ToString(), "across-the-failover");
  EXPECT_GE(rig.h->sim().counters().Get(Counter::kFailovers), 1u);

  ASSERT_TRUE(cl.Close(qd).ok());
  EXPECT_EQ(cl.pending_ops(), 0u);
}

TEST(FailoverTest, ReplayDeliversEveryElementExactlyOnceInOrder) {
  constexpr int kMessages = 60;
  RecoveryEchoRig rig(24, RecoveryConfig{});
  DemiEchoServer server(rig.server_libos, kEchoPort);
  LibOS& cl = *rig.client_libos;

  const QDesc qd = *cl.Socket();
  auto connected =
      cl.Wait(*cl.ConnectAsync(qd, Endpoint{rig.server_host->ip, kEchoPort}), 1 * kSecond);
  ASSERT_TRUE(connected.ok() && connected->status.ok());

  auto message = [](int i) {
    return "rec-" + std::to_string(i) + "-" + std::string(500, 'p');
  };

  // Kill the NIC while the burst is on the wire: some frames will be acknowledged,
  // some lost in flight, some not yet sent — the replay log covers the difference.
  rig.h->faults().ScheduleDeviceFailure(rig.client_host->nic->fault_device(),
                                        rig.h->sim().now() + 15 * kMicrosecond);

  std::vector<QToken> pushes;
  for (int i = 0; i < kMessages; ++i) {
    pushes.push_back(*cl.Push(qd, SgArray::FromString(message(i))));
  }
  auto push_results = cl.WaitAll(pushes, 10 * kSecond);
  ASSERT_TRUE(push_results.ok()) << push_results.status();
  for (const QResult& r : *push_results) {
    EXPECT_TRUE(r.status.ok()) << r.status;
  }

  // Exactly-once, in-order: a duplicate would shift the sequence, a drop would hang
  // the pop (bounded by the Wait deadline).
  for (int i = 0; i < kMessages; ++i) {
    auto r = cl.Wait(*cl.Pop(qd), 10 * kSecond);
    ASSERT_TRUE(r.ok() && r->status.ok()) << "message " << i << ": " << r.status();
    EXPECT_EQ(r->sga.ToString(), message(i)) << "message " << i;
  }
  EXPECT_GE(rig.h->sim().counters().Get(Counter::kFailovers), 1u);

  ASSERT_TRUE(cl.Close(qd).ok());
  EXPECT_EQ(cl.pending_ops(), 0u);
}

TEST(FailoverTest, BlockingOpsStayBoundedDuringAnOutage) {
  RecoveryEchoRig rig(25, RecoveryConfig{});
  DemiEchoServer server(rig.server_libos, kEchoPort);
  LibOS& cl = *rig.client_libos;

  const QDesc qd = *cl.Socket();
  auto connected =
      cl.Wait(*cl.ConnectAsync(qd, Endpoint{rig.server_host->ip, kEchoPort}), 1 * kSecond);
  ASSERT_TRUE(connected.ok() && connected->status.ok());
  ASSERT_TRUE(cl.BlockingPush(qd, SgArray::FromString("warm"), 1 * kSecond)->status.ok());
  ASSERT_TRUE(cl.BlockingPop(qd, 1 * kSecond)->status.ok());

  rig.h->faults().ScheduleDeviceFailure(rig.client_host->nic->fault_device(),
                                        rig.h->sim().now() + 1 * kMicrosecond);
  rig.h->sim().RunFor(10 * kMicrosecond);

  // Mid-outage (the default policy needs several virtual ms to fail over), a 1 ms
  // deadline must produce kTimedOut — never a hung qtoken.
  const TimeNs before = rig.h->sim().now();
  auto timed_out = cl.BlockingPop(qd, 1 * kMillisecond);
  EXPECT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.code(), ErrorCode::kTimedOut);
  EXPECT_LE(rig.h->sim().now() - before, 2 * kMillisecond);
  EXPECT_EQ(cl.pending_ops(), 0u);  // the timed-out pop was cancelled, not leaked

  // With a deadline generous enough to cover the failover, blocking ops succeed.
  auto pushed = cl.BlockingPush(qd, SgArray::FromString("after"), 500 * kMillisecond);
  ASSERT_TRUE(pushed.ok()) << pushed.status();
  EXPECT_TRUE(pushed->status.ok()) << pushed->status;
  auto popped = cl.BlockingPop(qd, 500 * kMillisecond);
  ASSERT_TRUE(popped.ok()) << popped.status();
  EXPECT_TRUE(popped->status.ok()) << popped->status;
  EXPECT_EQ(popped->sga.ToString(), "after");
  EXPECT_GE(rig.h->sim().counters().Get(Counter::kFailovers), 1u);

  ASSERT_TRUE(cl.Close(qd).ok());
  EXPECT_EQ(cl.pending_ops(), 0u);
}

TEST(FailoverTest, LinkFlapReconnectsOnTheFastPathWithoutFailingOver) {
  constexpr std::uint64_t kTarget = 300;
  RecoveryConfig cfg;
  cfg.retry.attempt_timeout_ns = 1 * kMillisecond;
  TcpConfig tcp;
  tcp.init_rto_ns = 200 * kMicrosecond;
  tcp.min_rto_ns = 100 * kMicrosecond;
  tcp.max_retries = 2;  // the flap kills the connection while the device is healthy
  RecoveryEchoRig rig(26, cfg, tcp);
  DemiEchoServer server(rig.server_libos, kEchoPort);
  DemiEchoClient client(rig.client_libos, Endpoint{rig.server_host->ip, kEchoPort}, 64,
                        kTarget);
  rig.h->faults().ScheduleLinkFlap(rig.client_host->nic->fault_device(),
                                   300 * kMicrosecond, 2 * kMillisecond);

  ASSERT_TRUE(rig.h->RunUntil([&] { return client.done() || client.failed(); },
                              60 * kSecond));
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.completed(), kTarget);
  auto& counters = rig.h->sim().counters();
  // The session reconnected (retries fired) but never left the bypass path.
  EXPECT_GE(counters.Get(Counter::kRetriesAttempted), 1u);
  EXPECT_EQ(counters.Get(Counter::kFailovers), 0u);
  EXPECT_EQ(counters.Get(Counter::kFastPathRepromotions), 0u);
  EXPECT_EQ(rig.client_libos->pending_ops(), 0u);
}

TEST(FailoverTest, RepromotesToFastPathAfterTheLinkHeals) {
  constexpr std::uint64_t kTarget = 2000;
  RecoveryConfig cfg;
  cfg.retry.attempt_timeout_ns = 500 * kMicrosecond;
  cfg.retry.max_attempts = 2;
  cfg.retry.initial_backoff_ns = 100 * kMicrosecond;
  cfg.breaker_threshold = 1;
  cfg.repromote_after_ns = 2 * kMillisecond;
  TcpConfig tcp;
  tcp.init_rto_ns = 200 * kMicrosecond;
  tcp.min_rto_ns = 100 * kMicrosecond;
  tcp.max_retries = 2;
  RecoveryEchoRig rig(27, cfg, tcp);
  DemiEchoServer server(rig.server_libos, kEchoPort);
  DemiEchoClient client(rig.client_libos, Endpoint{rig.server_host->ip, kEchoPort}, 64,
                        kTarget);
  // Long flap: fast-path attempts exhaust (tripping the breaker), the session fails
  // over, the link heals, and after 2 ms of continuous health it migrates back.
  rig.h->faults().ScheduleLinkFlap(rig.client_host->nic->fault_device(),
                                   200 * kMicrosecond, 5 * kMillisecond);

  ASSERT_TRUE(rig.h->RunUntil([&] { return client.done() || client.failed(); },
                              60 * kSecond));
  EXPECT_TRUE(client.done());
  EXPECT_EQ(client.completed(), kTarget);
  auto& counters = rig.h->sim().counters();
  EXPECT_GE(counters.Get(Counter::kFailovers), 1u);
  EXPECT_GE(counters.Get(Counter::kBreakerTrips), 1u);
  EXPECT_GE(counters.Get(Counter::kFastPathRepromotions), 1u);
  EXPECT_EQ(rig.client_libos->pending_ops(), 0u);
}

TEST(FailoverTest, FailoverRunsAreBitDeterministic) {
  using Snapshot = std::tuple<TimeNs, std::uint64_t, std::uint64_t, std::uint64_t,
                              std::uint64_t, std::uint64_t>;
  auto run = [] {
    constexpr std::uint64_t kTarget = 150;
    RecoveryEchoRig rig(31, RecoveryConfig{});
    DemiEchoServer server(rig.server_libos, kEchoPort);
    DemiEchoClient client(rig.client_libos, Endpoint{rig.server_host->ip, kEchoPort}, 64,
                          kTarget);
    rig.h->faults().ScheduleDeviceFailure(rig.client_host->nic->fault_device(),
                                          400 * kMicrosecond);
    EXPECT_TRUE(rig.h->RunUntil([&] { return client.done() || client.failed(); },
                                60 * kSecond));
    EXPECT_TRUE(client.done());
    auto& c = rig.h->sim().counters();
    return Snapshot{rig.h->sim().now(),
                    client.completed(),
                    c.Get(Counter::kFailovers),
                    c.Get(Counter::kRetriesAttempted),
                    c.Get(Counter::kBreakerTrips),
                    c.Get(Counter::kRetryGiveups)};
  };
  EXPECT_EQ(run(), run());
}

// --- Catfish: transient device-error retry --------------------------------------

struct CatfishRecoveryRig {
  explicit CatfishRecoveryRig(CatfishConfig cfg) {
    HostOptions opts;
    opts.with_nic = false;
    opts.with_kernel = false;
    opts.with_block_device = true;
    host = &h.AddHost("storage", "10.0.0.1", opts);
    libos = &h.Catfish(*host, std::move(cfg));
  }
  TestHarness h;
  TestHarness::Host* host;
  CatfishLibOS* libos;
};

TEST(CatfishRetryTest, TransientMediaErrorAndTimeoutAreRetried) {
  CatfishConfig cfg;
  cfg.recovery.enabled = true;
  CatfishRecoveryRig rig(cfg);
  const FaultDeviceId dev = rig.host->bdev->fault_device();
  const QDesc qd = *rig.libos->Creat("/log/flaky");

  rig.h.faults().ScheduleOpFault(dev, FaultKind::kMediaError, 0);
  auto first = rig.libos->BlockingPush(qd, SgArray::FromString("one"), 1 * kSecond);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->status.ok()) << first->status;

  rig.h.faults().ScheduleOpFault(dev, FaultKind::kOpTimeout, rig.h.sim().now());
  auto second = rig.libos->BlockingPush(qd, SgArray::FromString("two"), 1 * kSecond);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->status.ok()) << second->status;

  auto& counters = rig.h.sim().counters();
  EXPECT_GE(counters.Get(Counter::kRetriesAttempted), 2u);
  EXPECT_EQ(counters.Get(Counter::kRetryGiveups), 0u);
  // The retried writes are intact on the device.
  EXPECT_EQ(rig.libos->BlockingPop(qd)->sga.ToString(), "one");
  EXPECT_EQ(rig.libos->BlockingPop(qd)->sga.ToString(), "two");
}

TEST(CatfishRetryTest, PersistentErrorsExhaustIntoTypedGiveUp) {
  CatfishConfig cfg;
  cfg.recovery.enabled = true;
  cfg.recovery.retry.max_attempts = 3;
  CatfishRecoveryRig rig(cfg);
  const FaultDeviceId dev = rig.host->bdev->fault_device();
  const QDesc qd = *rig.libos->Creat("/log/dead-media");

  rig.h.faults().SetOpFaultRate(dev, FaultKind::kMediaError, 1.0);
  auto r = rig.libos->BlockingPush(qd, SgArray::FromString("doomed"), 1 * kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kRetryExhausted) << r->status;
  EXPECT_GE(rig.h.sim().counters().Get(Counter::kRetryGiveups), 1u);

  // Once the media recovers, the queue is usable again.
  rig.h.faults().SetOpFaultRate(dev, FaultKind::kMediaError, 0.0);
  auto ok = rig.libos->BlockingPush(qd, SgArray::FromString("healed"), 1 * kSecond);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->status.ok()) << ok->status;
}

TEST(CatfishRetryTest, DisabledRecoverySurfacesTheRawError) {
  CatfishConfig cfg;  // recovery.enabled defaults to false
  CatfishRecoveryRig rig(cfg);
  const FaultDeviceId dev = rig.host->bdev->fault_device();
  const QDesc qd = *rig.libos->Creat("/log/raw");

  rig.h.faults().SetOpFaultRate(dev, FaultKind::kMediaError, 1.0);
  auto r = rig.libos->BlockingPush(qd, SgArray::FromString("x"), 1 * kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kMediaError) << r->status;
  EXPECT_EQ(rig.h.sim().counters().Get(Counter::kRetriesAttempted), 0u);
}

}  // namespace
}  // namespace demi
