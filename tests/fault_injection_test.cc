// Per-fault-type unit tests for the device fault injector (§4.4, §4.5): every fault
// kind, injected against every device class, must complete pending qtokens with the
// right typed ErrorCode — never leave a token pending, never hang a Wait.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/harness.h"

namespace demi {
namespace {

HostOptions RdmaOpts() {
  HostOptions o;
  o.with_rdma = true;
  o.with_nic = false;
  o.with_kernel = false;
  return o;
}

HostOptions BlockOpts() {
  HostOptions o;
  o.with_nic = false;
  o.with_kernel = false;
  o.with_block_device = true;
  return o;
}

// Connects a catnip client to a catnip server; returns {server_qd, client_qd}.
std::pair<QDesc, QDesc> CatnipPair(TestHarness& h, CatnipLibOS& server,
                                   CatnipLibOS& client, Ipv4Address server_ip,
                                   std::uint16_t port) {
  const QDesc lqd = *server.Socket();
  EXPECT_TRUE(server.Bind(lqd, port).ok());
  EXPECT_TRUE(server.Listen(lqd).ok());
  const QToken atok = *server.AcceptAsync(lqd);
  const QDesc cqd = *client.Socket();
  const QToken ctok = *client.ConnectAsync(cqd, Endpoint{server_ip, port});
  EXPECT_TRUE(client.Wait(ctok, 10 * kSecond)->status.ok());
  const QDesc sqd = server.Wait(atok, 10 * kSecond)->new_qd;
  return {sqd, cqd};
}

// Connects a catmint client to a catmint server; returns {server_qd, client_qd}.
std::pair<QDesc, QDesc> CatmintPair(TestHarness& h, CatmintLibOS& server,
                                    CatmintLibOS& client, Ipv4Address server_ip,
                                    std::uint16_t port) {
  const QDesc lqd = *server.Socket();
  EXPECT_TRUE(server.Bind(lqd, port).ok());
  EXPECT_TRUE(server.Listen(lqd).ok());
  const QToken atok = *server.AcceptAsync(lqd);
  const QDesc cqd = *client.Socket();
  const QToken ctok = *client.ConnectAsync(cqd, Endpoint{server_ip, port});
  EXPECT_TRUE(client.Wait(ctok, 10 * kSecond)->status.ok());
  const QDesc sqd = server.Wait(atok, 10 * kSecond)->new_qd;
  return {sqd, cqd};
}

// --- NIC faults ---

TEST(FaultInjectionTest, NicLinkFlapMidTransferRecoversViaRetransmit) {
  // A transient link flap drops frames at the wire; TCP's retransmission machinery
  // must deliver the element anyway, bit-exact, once the link comes back.
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  auto [sqd, cqd] = CatnipPair(h, sl, cl, sh.ip, 7000);

  const QToken pop = *sl.Pop(sqd);
  // Link drops at once and stays down 10 ms: the element is pushed into a dead wire
  // and only retransmission after the link heals can deliver it.
  h.faults().ScheduleLinkFlap(ch.nic->fault_device(), h.sim().now(), 10 * kMillisecond);
  const std::string msg(32 * 1024, 'x');
  ASSERT_TRUE(cl.BlockingPush(cqd, SgArray::FromString(msg))->status.ok());
  auto r = sl.Wait(pop, 60 * kSecond);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->status.ok()) << r->status;
  EXPECT_EQ(r->sga.ToString(), msg);
  EXPECT_GE(h.sim().counters().Get(Counter::kLinkFlaps), 1u);
  EXPECT_GE(h.sim().counters().Get(Counter::kFaultsInjected), 2u);  // down + up
}

TEST(FaultInjectionTest, NicDeathFailsInFlightBlockingPopWithTypedError) {
  // The acceptance criterion: a NIC death while a BlockingPop is parked must surface a
  // typed error within a bounded virtual-time budget, not hang until a timeout.
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  auto [sqd, cqd] = CatnipPair(h, sl, cl, sh.ip, 7000);
  (void)sqd;

  const TimeNs start = h.sim().now();
  h.faults().ScheduleDeviceFailure(ch.nic->fault_device(), start + kMillisecond);
  auto r = cl.BlockingPop(cqd);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->status.code() == ErrorCode::kDeviceFailed ||
              r->status.code() == ErrorCode::kConnectionReset)
      << r->status;
  EXPECT_NE(r->status.code(), ErrorCode::kTimedOut);
  // Bounded budget: the error arrives at the death, not after an RTO pile-up.
  EXPECT_LE(h.sim().now(), start + 100 * kMillisecond);
  EXPECT_GE(h.sim().counters().Get(Counter::kFaultsInjected), 1u);
}

TEST(FaultInjectionTest, NicDeathFailsSubsequentPushWithTypedError) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1");
  auto& ch = h.AddHost("client", "10.0.0.2");
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  auto [sqd, cqd] = CatnipPair(h, sl, cl, sh.ip, 7000);
  (void)sqd;

  h.faults().ScheduleDeviceFailure(ch.nic->fault_device(), h.sim().now());
  h.sim().RunFor(kMillisecond);
  auto r = cl.BlockingPush(cqd, SgArray::FromString("doomed"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->status.code() == ErrorCode::kDeviceFailed ||
              r->status.code() == ErrorCode::kConnectionReset)
      << r->status;
}

TEST(FaultInjectionTest, NicDeathFailsParkedUdpPop) {
  // Datagram queues have no connection to reset; the device-failure path must still
  // flush their parked pops (§4.4: wakeup correctness is per-queue, not per-protocol).
  TestHarness h;
  auto& host = h.AddHost("a", "10.0.0.1");
  auto& libos = h.Catnip(host);
  const QDesc qd = *libos.SocketUdp();
  ASSERT_TRUE(libos.Bind(qd, 9000).ok());
  const QToken pop = *libos.Pop(qd);
  h.faults().ScheduleDeviceFailure(host.nic->fault_device(), h.sim().now() + kMillisecond);
  auto r = libos.Wait(pop, kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kDeviceFailed) << r->status;
}

TEST(FaultInjectionTest, FabricPartitionResetsConnectionAfterRtoExhaustion) {
  // A partition is invisible to both NICs (links stay up); only TCP's retransmission
  // budget detects it. The parked pop must complete with kConnectionReset, not hang.
  TcpConfig tcp;
  tcp.max_retries = 2;
  HostOptions opts;
  opts.tcp = tcp;
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1", opts);
  auto& ch = h.AddHost("client", "10.0.0.2", opts);
  auto& sl = h.Catnip(sh);
  auto& cl = h.Catnip(ch);
  auto [sqd, cqd] = CatnipPair(h, sl, cl, sh.ip, 7000);
  (void)sqd;

  h.faults().SchedulePartition(ch.nic->port(), sh.nic->port(), h.sim().now(),
                               600 * kSecond);
  const QToken pop = *cl.Pop(cqd);
  (void)cl.Push(cqd, SgArray::FromString("into the void"));
  auto r = cl.Wait(pop, 300 * kSecond);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->status.code(), ErrorCode::kConnectionReset) << r->status;
  EXPECT_GT(h.sim().counters().Get(Counter::kPacketsDropped), 0u);
}

// --- RDMA faults ---

TEST(FaultInjectionTest, QpErrorFailsPostedRecvWqesWithKQpError) {
  // A forced QP error must flush the pre-posted receive WQEs, and the parked pop that
  // rides on them must carry the typed kQpError cause — not a generic reset.
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1", RdmaOpts());
  auto& ch = h.AddHost("client", "10.0.0.2", RdmaOpts());
  auto& sl = h.Catmint(sh);
  auto& cl = h.Catmint(ch);
  auto [sqd, cqd] = CatmintPair(h, sl, cl, sh.ip, 7000);
  (void)sqd;

  const QToken pop = *cl.Pop(cqd);
  h.faults().ScheduleQpError(ch.rdma->fault_device(), h.sim().now() + kMillisecond);
  auto r = cl.Wait(pop, kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kQpError) << r->status;

  // Pushes queued after the error are flushed with the same recorded cause.
  auto p = cl.BlockingPush(cqd, SgArray::FromString("late"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->status.code(), ErrorCode::kQpError) << p->status;
}

TEST(FaultInjectionTest, RdmaDeviceDeathCarriesKDeviceFailed) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1", RdmaOpts());
  auto& ch = h.AddHost("client", "10.0.0.2", RdmaOpts());
  auto& sl = h.Catmint(sh);
  auto& cl = h.Catmint(ch);
  auto [sqd, cqd] = CatmintPair(h, sl, cl, sh.ip, 7000);
  (void)sqd;

  const QToken pop = *cl.Pop(cqd);
  h.faults().ScheduleDeviceFailure(ch.rdma->fault_device(), h.sim().now() + kMillisecond);
  auto r = cl.Wait(pop, kSecond);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kDeviceFailed) << r->status;
}

TEST(FaultInjectionTest, RdmaDeviceDeathReleasesPostedRecvBuffers) {
  // §4.5 free-protection in reverse: when the device dies, buffers it held for posted
  // WQEs must come back to the memory manager instead of leaking with the queue pair.
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1", RdmaOpts());
  auto& ch = h.AddHost("client", "10.0.0.2", RdmaOpts());
  auto& sl = h.Catmint(sh);
  auto& cl = h.Catmint(ch);
  auto [sqd, cqd] = CatmintPair(h, sl, cl, sh.ip, 7000);
  (void)sqd;
  (void)cqd;

  const std::uint64_t live_before = cl.memory().live_slots();
  ASSERT_GE(live_before, 64u);  // the provisioned recv pool is manager-owned
  h.faults().ScheduleDeviceFailure(ch.rdma->fault_device(), h.sim().now() + kMillisecond);
  h.sim().RunFor(10 * kMillisecond);
  EXPECT_LE(cl.memory().live_slots(), live_before - 64u);
}

TEST(FaultInjectionTest, RegistrationExhaustionFailsRegisterAndBouncedPush) {
  TestHarness h;
  auto& sh = h.AddHost("server", "10.0.0.1", RdmaOpts());
  auto& ch = h.AddHost("client", "10.0.0.2", RdmaOpts());
  auto& sl = h.Catmint(sh);
  auto& cl = h.Catmint(ch);
  auto [sqd, cqd] = CatmintPair(h, sl, cl, sh.ip, 7000);
  (void)sqd;

  h.faults().ScheduleRegExhaustion(ch.rdma->fault_device(), h.sim().now());
  h.sim().RunFor(kMicrosecond);

  // Direct registration now fails with the resource error, not a crash.
  Buffer region = Buffer::Allocate(4096);
  EXPECT_EQ(ch.rdma->RegisterMemory(region.shared_storage()).code(),
            ErrorCode::kResourceExhausted);

  // Exhaust the registered 4 KiB slots so the next bounce buffer must come from a
  // fresh arena — one the NIC can no longer register.
  std::vector<Buffer> held;
  const std::size_t arenas_before = cl.memory().arena_count();
  while (cl.memory().arena_count() == arenas_before) {
    held.push_back(cl.memory().Allocate(4096));
    ASSERT_LT(held.size(), 10000u) << "arena never grew";
  }

  // Foreign (unregistered) memory forces the transparent bounce; with registration
  // exhausted the bounce cannot produce a sendable segment.
  auto r = cl.BlockingPush(cqd, SgArray::FromString(std::string(4000, 'y')));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kResourceExhausted) << r->status;
}

// --- Block-device faults ---

TEST(FaultInjectionTest, BlockMediaErrorFailsPopThenRecovers) {
  TestHarness h;
  auto& host = h.AddHost("storage", "10.0.0.1", BlockOpts());
  auto& libos = h.Catfish(host);

  const QDesc wqd = *libos.Creat("/log");
  ASSERT_TRUE(libos.BlockingPush(wqd, SgArray::FromString("durable record"))->status.ok());
  ASSERT_TRUE(libos.Close(wqd).ok());

  // Arm a one-shot media error, then reopen so the block cache is cold and the pop
  // must fetch from the (now lying) device.
  h.faults().ScheduleOpFault(host.bdev->fault_device(), FaultKind::kMediaError,
                             h.sim().now());
  h.sim().RunFor(kMicrosecond);
  const QDesc rqd = *libos.Open("/log");
  auto r = libos.BlockingPop(rqd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kMediaError) << r->status;
  EXPECT_GE(h.sim().counters().Get(Counter::kOpsFailed), 1u);

  // The fault was transient (one bad read): a retry must replay the record intact.
  auto retry = libos.BlockingPop(rqd);
  ASSERT_TRUE(retry.ok());
  ASSERT_TRUE(retry->status.ok()) << retry->status;
  EXPECT_EQ(retry->sga.ToString(), "durable record");
}

TEST(FaultInjectionTest, BlockOpTimeoutCompletesLateWithKTimedOut) {
  TestHarness h;
  auto& host = h.AddHost("storage", "10.0.0.1", BlockOpts());
  auto& libos = h.Catfish(host);

  const QDesc wqd = *libos.Creat("/log");
  ASSERT_TRUE(libos.BlockingPush(wqd, SgArray::FromString("slow record"))->status.ok());
  ASSERT_TRUE(libos.Close(wqd).ok());

  h.faults().ScheduleOpFault(host.bdev->fault_device(), FaultKind::kOpTimeout,
                             h.sim().now());
  h.sim().RunFor(kMicrosecond);
  const TimeNs start = h.sim().now();
  const QDesc rqd = *libos.Open("/log");
  auto r = libos.BlockingPop(rqd);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kTimedOut) << r->status;
  // The command completes *late* — the timeout is a delay plus an error, not a drop.
  EXPECT_GE(h.sim().now() - start, 5 * kMillisecond);
}

TEST(FaultInjectionTest, BlockDeviceDeathFailsSubmitsImmediately) {
  TestHarness h;
  auto& host = h.AddHost("storage", "10.0.0.1", BlockOpts());
  auto& libos = h.Catfish(host);
  const QDesc qd = *libos.Creat("/log");

  h.faults().ScheduleDeviceFailure(host.bdev->fault_device(), h.sim().now());
  h.sim().RunFor(kMicrosecond);
  auto r = libos.BlockingPush(qd, SgArray::FromString("never lands"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->status.code(), ErrorCode::kDeviceFailed) << r->status;
}

// --- Injector semantics ---

TEST(FaultInjectionTest, RateBasedFaultsAreSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    Simulation sim;
    FaultInjector inj(&sim, seed);
    const FaultDeviceId dev = inj.Register("blk/test");
    inj.SetOpFaultRate(dev, FaultKind::kMediaError, 0.1);
    std::vector<int> hits;
    for (int i = 0; i < 200; ++i) {
      if (inj.NextOpFault(dev).has_value()) {
        hits.push_back(i);
      }
    }
    return hits;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultInjectionTest, PartitionsRefcountOverlappingWindows) {
  Simulation sim;
  FaultInjector inj(&sim, 1);
  inj.SchedulePartition(1, 2, kMillisecond, 10 * kMillisecond);       // [1ms, 11ms)
  inj.SchedulePartition(2, 1, 5 * kMillisecond, 10 * kMillisecond);   // [5ms, 15ms)
  EXPECT_FALSE(inj.Partitioned(1, 2));
  // Probe via scheduled events: the overlap [5ms, 11ms) counts two partitions, the
  // tail [11ms, 15ms) one, and after 15ms none.
  bool mid = false, tail = false, after = true;
  sim.ScheduleAt(7 * kMillisecond, [&] { mid = inj.Partitioned(2, 1); });
  sim.ScheduleAt(12 * kMillisecond, [&] { tail = inj.Partitioned(1, 2); });
  sim.ScheduleAt(16 * kMillisecond, [&] { after = inj.Partitioned(1, 2); });
  sim.RunFor(20 * kMillisecond);
  EXPECT_TRUE(mid);    // order-insensitive lookup during the overlap
  EXPECT_TRUE(tail);   // overlapping windows refcount: one heal does not clear both
  EXPECT_FALSE(after);
}

}  // namespace
}  // namespace demi
