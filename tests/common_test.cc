// Unit tests for src/common: Status/Result, Buffer slicing & refcounts, RingBuffer
// FIFO invariants, ObjectPool reuse, byte-order codecs, checksums, histograms, and the
// deterministic random sources (including Zipf skew properties).

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/byte_order.h"
#include "src/common/checksum.h"
#include "src/common/histogram.h"
#include "src/common/pool.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/ring_buffer.h"
#include "src/common/status.h"

namespace demi {
namespace {

// --- Status / Result ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad qd");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "invalid_argument: bad qd");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int i = 0; i <= static_cast<int>(ErrorCode::kInternal); ++i) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(i)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) {
    return InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> QuarterEven(int x) {
  ASSIGN_OR_RETURN(int half, HalveEven(x));
  ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*QuarterEven(8), 2);
  EXPECT_EQ(QuarterEven(6).code(), ErrorCode::kInvalidArgument);
}

// --- Buffer ---

TEST(BufferTest, EmptyBuffer) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(BufferTest, CopyOfString) {
  Buffer b = Buffer::CopyOf("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(b.AsStringView(), "hello");
}

TEST(BufferTest, SliceSharesStorage) {
  Buffer b = Buffer::CopyOf("hello world");
  Buffer s = b.Slice(6, 5);
  EXPECT_EQ(s.AsStringView(), "world");
  EXPECT_EQ(s.storage(), b.storage());
  EXPECT_EQ(b.use_count(), 2);
}

TEST(BufferTest, SliceClampsToBounds) {
  Buffer b = Buffer::CopyOf("abc");
  EXPECT_EQ(b.Slice(1, 100).AsStringView(), "bc");
  EXPECT_TRUE(b.Slice(10, 5).empty());
}

TEST(BufferTest, RefcountDropsWhenViewsDie) {
  Buffer b = Buffer::CopyOf("data");
  {
    Buffer v = b.Slice(0, 2);
    EXPECT_EQ(b.use_count(), 2);
  }
  EXPECT_EQ(b.use_count(), 1);
}

TEST(BufferTest, MutationVisibleThroughSlices) {
  Buffer b = Buffer::Allocate(4);
  std::memcpy(b.mutable_data(), "aaaa", 4);
  Buffer s = b.Slice(2, 2);
  b.mutable_data()[2] = std::byte{'z'};
  EXPECT_EQ(s.AsStringView(), "za");
}

TEST(BufferTest, ConcatCopy) {
  std::vector<Buffer> parts = {Buffer::CopyOf("foo"), Buffer(), Buffer::CopyOf("bar")};
  EXPECT_EQ(ConcatCopy(parts).AsStringView(), "foobar");
}

// --- RingBuffer ---

TEST(RingBufferTest, CapacityRoundsToPowerOfTwo) {
  RingBuffer<int> r(100);
  EXPECT_EQ(r.capacity(), 128u);
}

TEST(RingBufferTest, FifoOrder) {
  RingBuffer<int> r(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(r.Push(i));
  }
  EXPECT_TRUE(r.full());
  EXPECT_FALSE(r.Push(99));
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(r.Pop(), i);
  }
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Pop(), std::nullopt);
}

TEST(RingBufferTest, WraparoundManyTimes) {
  RingBuffer<int> r(8);
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (!r.full()) {
      ASSERT_TRUE(r.Push(next_in++));
    }
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(r.Pop(), next_out++);
    }
  }
}

TEST(RingBufferTest, FrontPeeksWithoutConsuming) {
  RingBuffer<std::string> r(2);
  ASSERT_TRUE(r.Push("x"));
  ASSERT_NE(r.Front(), nullptr);
  EXPECT_EQ(*r.Front(), "x");
  EXPECT_EQ(r.size(), 1u);
}

// --- ObjectPool ---

TEST(ObjectPoolTest, ReusesReleasedObjects) {
  ObjectPool<int> pool(4);
  int* a = pool.Acquire();
  pool.Release(a);
  int* b = pool.Acquire();
  EXPECT_EQ(a, b);  // LIFO free list reuses the hot object
  EXPECT_EQ(pool.live(), 1u);
}

TEST(ObjectPoolTest, GrowsInChunks) {
  ObjectPool<int> pool(2);
  std::set<int*> ptrs;
  for (int i = 0; i < 7; ++i) {
    ptrs.insert(pool.Acquire());
  }
  EXPECT_EQ(ptrs.size(), 7u);
  EXPECT_EQ(pool.allocated(), 8u);  // 4 chunks of 2
}

// --- ByteWriter / ByteReader ---

TEST(ByteOrderTest, RoundTripAllWidths) {
  Buffer b = Buffer::Allocate(15);
  ByteWriter w(b.mutable_span());
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFULL);
  ByteReader r(b.span());
  EXPECT_EQ(r.U8(), 0xAB);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteOrderTest, BigEndianLayout) {
  Buffer b = Buffer::Allocate(2);
  ByteWriter w(b.mutable_span());
  w.U16(0x0102);
  EXPECT_EQ(std::to_integer<int>(b.span()[0]), 1);
  EXPECT_EQ(std::to_integer<int>(b.span()[1]), 2);
}

// --- Checksums ---

TEST(ChecksumTest, InternetChecksumKnownVector) {
  // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const std::uint16_t csum = InternetChecksum(std::as_bytes(std::span(data)));
  EXPECT_EQ(csum, 0x220d);
}

TEST(ChecksumTest, ChecksumOfDataPlusChecksumIsZero) {
  Buffer b = Buffer::CopyOf("the quick brown fox!");  // even length
  const std::uint16_t csum = InternetChecksum(b.span());
  Buffer with = Buffer::Allocate(b.size() + 2);
  std::memcpy(with.mutable_data(), b.data(), b.size());
  with.mutable_data()[b.size()] = std::byte{static_cast<std::uint8_t>(csum >> 8)};
  with.mutable_data()[b.size() + 1] = std::byte{static_cast<std::uint8_t>(csum & 0xFF)};
  EXPECT_EQ(InternetChecksum(with.span()), 0);
}

TEST(ChecksumTest, AccumulatorMatchesFlatChecksumForEverySplit) {
  // The scatter-gather TX path (WriteTcpHeaderSg over a FrameChain) checksums the
  // payload part by part via ChecksumAccumulator. RFC 1071 is positional — bytes
  // alternate high/low in the 16-bit words — so an odd-length part shifts the parity
  // of everything after it. Every 2-part and 3-part split of a buffer, odd or even,
  // must fold to exactly the flat single-span checksum.
  std::uint8_t raw[31];
  for (std::size_t i = 0; i < sizeof(raw); ++i) {
    raw[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  const auto data = std::as_bytes(std::span(raw));
  const std::uint16_t flat = InternetChecksum(data);

  for (std::size_t a = 0; a <= data.size(); ++a) {
    ChecksumAccumulator acc2;
    acc2.Add(data.subspan(0, a));
    acc2.Add(data.subspan(a));
    EXPECT_EQ(acc2.Fold(), flat) << "2-part split at " << a;
    for (std::size_t b = a; b <= data.size(); ++b) {
      ChecksumAccumulator acc3;
      acc3.Add(data.subspan(0, a));
      acc3.Add(data.subspan(a, b - a));
      acc3.Add(data.subspan(b));
      ASSERT_EQ(acc3.Fold(), flat) << "3-part split at " << a << "," << b;
    }
  }
}

TEST(ChecksumTest, Crc32cKnownVector) {
  // "123456789" -> 0xE3069283 (iSCSI test vector).
  Buffer b = Buffer::CopyOf("123456789");
  EXPECT_EQ(Crc32c(b.span()), 0xE3069283u);
}

TEST(ChecksumTest, Crc32cDetectsBitFlip) {
  Buffer b = Buffer::CopyOf("some storage payload");
  const std::uint32_t good = Crc32c(b.span());
  b.mutable_data()[3] ^= std::byte{0x01};
  EXPECT_NE(Crc32c(b.span()), good);
}

// --- Histogram ---

TEST(HistogramTest, ExactForSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.count(), 64u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 63u);
}

TEST(HistogramTest, QuantilesWithinRelativePrecision) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100000; ++v) {
    h.Record(v);
  }
  // ~1.5% relative precision from the 64-sub-bucket layout.
  EXPECT_NEAR(static_cast<double>(h.P50()), 50000.0, 50000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(h.P99()), 99000.0, 99000.0 * 0.02);
  EXPECT_EQ(h.max(), 100000u);
}

TEST(HistogramTest, MergeCombinesPopulations) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

// --- Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(500.0);
  }
  EXPECT_NEAR(sum / n, 500.0, 15.0);
}

// --- Zipf ---

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(13);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Next(rng)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);
  }
}

// Property sweep: for every skew level, draws stay in range and skew orders hot keys.
class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, HotKeysDominateInProportionToTheta) {
  const double theta = GetParam();
  Rng rng(17);
  ZipfGenerator zipf(1000, theta);
  std::map<std::uint64_t, int> counts;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t k = zipf.Next(rng);
    ASSERT_LT(k, 1000u);
    ++counts[k];
  }
  // Rank 0 must be the hottest key for any positive skew.
  int max_count = 0;
  for (const auto& [k, c] : counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_EQ(counts[0], max_count);
  // Hotter theta concentrates more mass on the top key.
  const double top_frac = static_cast<double>(counts[0]) / n;
  if (theta >= 0.99) {
    EXPECT_GT(top_frac, 0.05);
  } else if (theta >= 0.5) {
    EXPECT_GT(top_frac, 0.005);
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest, ::testing::Values(0.2, 0.5, 0.8, 0.99));

}  // namespace
}  // namespace demi
