#!/usr/bin/env bash
# One-command sanitizer run: configures a dedicated ASAN+UBSAN build tree, builds
# everything, and runs the full tier-1 ctest suite under the sanitizers.
#
# Usage:
#   tools/sanitize.sh            # ASAN + UBSAN (the -DASAN=ON combo)
#   tools/sanitize.sh ubsan      # UBSAN only (cheaper; no shadow memory)
#
# Environment:
#   SAN_BUILD_DIR   build directory (default: <repo>/build-san or build-ubsan)
#   CTEST_ARGS      extra args for ctest, e.g. CTEST_ARGS="-L metrics"
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${1:-asan}"

case "$MODE" in
  asan)  FLAGS="-DASAN=ON";  DEFAULT_BUILD="$REPO/build-san" ;;
  ubsan) FLAGS="-DUBSAN=ON"; DEFAULT_BUILD="$REPO/build-ubsan" ;;
  *) echo "usage: $0 [asan|ubsan]" >&2; exit 2 ;;
esac
BUILD="${SAN_BUILD_DIR:-$DEFAULT_BUILD}"

cmake -S "$REPO" -B "$BUILD" -DCMAKE_BUILD_TYPE=RelWithDebInfo $FLAGS
cmake --build "$BUILD" -j "$(nproc)"

# halt_on_error keeps a UBSAN finding from scrolling past as a warning.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

cd "$BUILD"
# shellcheck disable=SC2086
ctest --output-on-failure -j "$(nproc)" ${CTEST_ARGS:-}
