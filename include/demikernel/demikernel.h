// Demikernel reproduction — public umbrella header.
//
// This exposes the paper's system-call interface (Figure 3) in C++ form:
//
//   control path (network):  Socket/Bind/Listen/Accept/Connect/Close
//   control path (files):    Open/Creat
//   control path (queues):   QueueCreate/Merge/Filter/Sort/MapQueue/QConnect
//   data path:               Push/Pop/Wait/WaitAny/WaitAll/BlockingPush/BlockingPop
//   memory:                  SgaAlloc (transparent registration + free-protection)
//
// plus the four library OSes:
//
//   CatnapLibOS  — portability: Demikernel queues over legacy kernel sockets
//   CatnipLibOS  — DPDK-style NIC + user-level TCP stack, zero copy
//   CatmintLibOS — RDMA NIC, message-native queues, transparent registration
//   CatfishLibOS — SPDK-style NVMe device, log-structured file queues
//
// and the simulation environment (TestHarness) used to stand in for kernel-bypass
// hardware (see DESIGN.md §2 for the substitution rationale).

#ifndef INCLUDE_DEMIKERNEL_DEMIKERNEL_H_
#define INCLUDE_DEMIKERNEL_DEMIKERNEL_H_

#include "src/core/catfish.h"
#include "src/core/catmint.h"
#include "src/core/catnap.h"
#include "src/core/catnip.h"
#include "src/core/harness.h"
#include "src/core/libos.h"
#include "src/core/queue_ops.h"
#include "src/core/recovery.h"
#include "src/core/types.h"
#include "src/memory/sgarray.h"

#endif  // INCLUDE_DEMIKERNEL_DEMIKERNEL_H_
