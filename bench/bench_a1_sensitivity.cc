// A1 — ablation: how robust are the paper's claims to the cost-model calibration?
//
// Three sweeps:
//   1. syscall cost: the kernel's echo-RTT penalty vs Catnip as crossings get cheaper
//      (the "can't we just make syscalls fast?" rebuttal — even at 0ns the kernel
//      stack + interrupt costs keep the gap open);
//   2. mTCP batch delay: where the mTCP-vs-kernel latency crossover sits (the §6 claim
//      holds whenever batching exceeds ~the syscall savings);
//   3. wire latency: as the network gets slower, the host-side advantage of
//      kernel-bypass shrinks relative to end-to-end RTT (datacenter-scale wires are
//      exactly where the paper's argument bites).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/echo_runners.h"

namespace demi {
namespace {

int Run() {
  bench::Header("A1", "cost-model sensitivity ablation",
                "the architectural orderings (catnip < kernel < mtcp; bypass wins) "
                "hold across wide cost-model ranges, not just at the calibration point");

  constexpr std::uint64_t kRequests = 800;
  constexpr std::size_t kMsg = 64;

  std::printf("sweep 1: syscall crossing cost (kernel path) — 64B echo RTT p50 (ns)\n\n");
  bench::Row("%-14s %12s %12s %10s\n", "syscall ns", "kernel", "catnip", "ratio");
  bool kernel_always_slower = true;
  for (const TimeNs syscall_ns : {0L, 100L, 250L, 500L, 1000L, 2000L}) {
    CostModel cost;
    cost.syscall_ns = syscall_ns;
    auto kernel = bench::RunEcho("posix", kMsg, kRequests, cost);
    auto catnip = bench::RunEcho("catnip", kMsg, kRequests, cost);
    const double ratio = static_cast<double>(kernel.latency.P50()) /
                         static_cast<double>(catnip.latency.P50());
    bench::Row("%-14lld %12llu %12llu %9.2fx\n", static_cast<long long>(syscall_ns),
               static_cast<unsigned long long>(kernel.latency.P50()),
               static_cast<unsigned long long>(catnip.latency.P50()), ratio);
    kernel_always_slower = kernel_always_slower && ratio > 1.0;
  }
  std::printf("\n-> even with FREE syscalls the kernel path loses: its stack runs at "
              "kernel cost and\n   its receive path is interrupt-driven. The syscall "
              "is only part of the tax (Section 3.1).\n\n");

  std::printf("sweep 2: mTCP batch delay — where the Section 6 claim holds\n\n");
  bench::Row("%-14s %12s %12s %14s\n", "batch ns", "mtcp p50", "kernel p50",
             "mtcp slower?");
  TimeNs crossover = -1;
  for (const TimeNs batch : {0L, 1000L, 2000L, 4000L, 8000L, 16000L}) {
    CostModel cost;
    cost.mtcp_batch_delay_ns = batch;
    auto mtcp = bench::RunEcho("mtcp", kMsg, kRequests, cost);
    auto kernel = bench::RunEcho("posix", kMsg, kRequests, cost);
    const bool slower = mtcp.latency.P50() > kernel.latency.P50();
    bench::Row("%-14lld %12llu %12llu %14s\n", static_cast<long long>(batch),
               static_cast<unsigned long long>(mtcp.latency.P50()),
               static_cast<unsigned long long>(kernel.latency.P50()),
               slower ? "yes" : "no");
    if (!slower) {
      crossover = batch;
    }
  }
  std::printf("\n-> with batching disabled mTCP beats the kernel (it IS a user-level "
              "stack); with its\n   real batched design it loses — the paper's point "
              "is that the POSIX API forces that design.\n\n");

  std::printf("sweep 3: wire latency — how much of the RTT the host can still save\n\n");
  bench::Row("%-14s %12s %12s %10s\n", "wire ns", "kernel", "catnip", "ratio");
  double ratio_fast = 0, ratio_slow = 0;
  for (const TimeNs wire : {200L, 1000L, 5000L, 20000L, 100000L}) {
    CostModel cost;
    cost.wire_latency_ns = wire;
    auto kernel = bench::RunEcho("posix", kMsg, kRequests, cost);
    auto catnip = bench::RunEcho("catnip", kMsg, kRequests, cost);
    const double ratio = static_cast<double>(kernel.latency.P50()) /
                         static_cast<double>(catnip.latency.P50());
    bench::Row("%-14lld %12llu %12llu %9.2fx\n", static_cast<long long>(wire),
               static_cast<unsigned long long>(kernel.latency.P50()),
               static_cast<unsigned long long>(catnip.latency.P50()), ratio);
    if (wire == 200) {
      ratio_fast = ratio;
    }
    if (wire == 100000) {
      ratio_slow = ratio;
    }
  }
  std::printf("\n-> the bypass advantage is %.2fx at 200ns wires but only %.2fx at "
              "100us wires: the faster\n   the network, the more the host software is "
              "the bottleneck — the paper's opening trend.\n",
              ratio_fast, ratio_slow);

  bench::Verdict(kernel_always_slower && crossover >= 0 && ratio_fast > ratio_slow,
                 "orderings persist across the sweeps, and the crossovers land where "
                 "the architecture predicts");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
