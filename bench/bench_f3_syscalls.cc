// F3 — Figure 3: microbenchmarks of the whole Demikernel system-call interface.
//
// Simulated CPU cost of each call in the figure: the data-path calls
// (push/pop/wait/sgaalloc) on an in-memory queue isolate interface overhead from any
// device, and the queue-combinator calls are measured per element. The paper's
// position: a libOS "syscall" is a function call plus table lookups — tens of ns, not
// the ~500ns of a kernel crossing.

#include <cstdio>

#include "bench/bench_util.h"
#include "include/demikernel/demikernel.h"

namespace demi {
namespace {

class PureLibOS final : public LibOS {
 public:
  explicit PureLibOS(HostCpu* host) : LibOS(host) {}
  std::string name() const override { return "pure"; }

 protected:
  Result<std::unique_ptr<IoQueue>> NewSocketQueue() override {
    return Status(ErrorCode::kUnsupported, "no device");
  }
};

// Measures simulated CPU per iteration of `fn`.
template <typename Fn>
double Measure(Simulation& sim, int iters, Fn&& fn) {
  const TimeNs start = sim.now();
  for (int i = 0; i < iters; ++i) {
    fn(i);
  }
  while (sim.StepOnce()) {
  }
  return static_cast<double>(sim.now() - start) / iters;
}

int Run() {
  bench::Header("F3", "Demikernel system-call interface microbenchmarks (Figure 3)",
                "libOS calls cost function-call time (~tens of ns), versus ~500ns+ "
                "for the kernel crossing they replace (Section 3.1)");
  CostModel cost;
  bench::PrintCostModel(cost);

  Simulation sim(cost);
  HostCpu host(&sim, "h");
  PureLibOS libos(&host);
  constexpr int kIters = 2000;

  bench::Row("%-42s %12s\n", "operation", "ns/op (sim)");

  const QDesc qd = *libos.QueueCreate();
  double ns;

  ns = Measure(sim, kIters, [&](int) {
    (void)libos.Push(qd, SgArray());
  });
  bench::Row("%-42s %12.1f\n", "push(qd, sga)  [in-memory queue]", ns);

  ns = Measure(sim, kIters, [&](int) { (void)libos.Pop(qd); });
  bench::Row("%-42s %12.1f\n", "pop(qd)", ns);

  // wait on an already-complete token: pure completion-table cost.
  std::vector<QToken> tokens;
  tokens.reserve(kIters);
  for (int i = 0; i < kIters; ++i) {
    (void)libos.Push(qd, SgArray());
    tokens.push_back(*libos.Pop(qd));
  }
  while (sim.StepOnce()) {
  }
  ns = Measure(sim, kIters, [&](int i) { (void)libos.Wait(tokens[i], 0); });
  bench::Row("%-42s %12.1f\n", "wait(qt) on a ready completion", ns);

  ns = Measure(sim, kIters, [&](int) { (void)libos.SgaAlloc(64); });
  bench::Row("%-42s %12.1f\n", "sgaalloc(64B)  [pooled]", ns);

  ns = Measure(sim, kIters, [&](int) { (void)libos.SgaAlloc(4096); });
  bench::Row("%-42s %12.1f\n", "sgaalloc(4KB)  [pooled]", ns);

  // Combinators: per-element cost with a trivial 100ns user function.
  ElementPredicate pred{[](const SgArray&) { return true; }, 100};
  const QDesc src1 = *libos.QueueCreate();
  const QDesc filtered = *libos.Filter(src1, pred);
  ns = Measure(sim, kIters, [&](int) {
    (void)libos.Push(filtered, SgArray());
    (void)libos.Pop(src1);
  });
  bench::Row("%-42s %12.1f\n", "filter queue: push+forward (100ns fn)", ns);

  ElementTransform transform{[](const SgArray& s) { return s; }, 100};
  const QDesc src2 = *libos.QueueCreate();
  const QDesc mapped = *libos.MapQueue(src2, transform);
  ns = Measure(sim, kIters, [&](int) {
    (void)libos.Push(mapped, SgArray());
    (void)libos.Pop(src2);
  });
  bench::Row("%-42s %12.1f\n", "map queue: push+transform (100ns fn)", ns);

  ElementComparator cmp{[](const SgArray&, const SgArray&) { return false; }, 50};
  const QDesc src3 = *libos.QueueCreate();
  const QDesc sorted = *libos.Sort(src3, cmp);
  ns = Measure(sim, 256, [&](int) {
    (void)libos.Push(sorted, SgArray());
    (void)libos.Pop(sorted);
  });
  bench::Row("%-42s %12.1f\n", "sort queue: push+pop (50ns cmp)", ns);

  const QDesc m1 = *libos.QueueCreate();
  const QDesc m2 = *libos.QueueCreate();
  const QDesc merged = *libos.Merge(m1, m2);
  ns = Measure(sim, kIters, [&](int) {
    (void)libos.Push(m1, SgArray());
    (void)libos.Pop(merged);
  });
  bench::Row("%-42s %12.1f\n", "merge queue: inner push -> merged pop", ns);

  std::printf("\nreference: one legacy-kernel syscall crossing = %lld ns, fastcall "
              "control-path crossing = %lld ns, libOS call = %lld ns\n",
              static_cast<long long>(cost.syscall_ns),
              static_cast<long long>(cost.fastcall_crossing_ns),
              static_cast<long long>(cost.libos_call_ns));
  std::printf("(fastcall: accept/connect/lease/grant through a dedicated entry — no "
              "full register save, no KPTI switch — see bench_f2_controlpath)\n");

  bench::Verdict(true, "every data-path call costs O(libos_call) =~ tens of ns, an "
                       "order of magnitude below one syscall crossing");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
