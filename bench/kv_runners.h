// Shared KV-experiment runners for C1, C2, and E2: a KV server in the given
// architecture, a preloaded store, and a fleet of closed-loop clients.

#ifndef BENCH_KV_RUNNERS_H_
#define BENCH_KV_RUNNERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/actors.h"
#include "src/core/harness.h"

namespace demi::bench {

constexpr std::uint16_t kKvPort = 6379;

struct KvRunOptions {
  std::string kind = "catnip";  // catnip | catnap | catmint | posix
  int clients = 1;
  std::uint64_t requests_per_client = 1000;
  KvWorkloadConfig workload;
  CostModel cost;
  int client_fragments = 1;       // posix only: split each request into N writes
  TimeNs fragment_gap_ns = 0;     // posix only: spacing between fragments
};

struct KvRunResult {
  Histogram latency;
  std::uint64_t completed = 0;
  std::uint64_t server_requests = 0;
  std::uint64_t incomplete_scans = 0;
  Counters server_counters;
  std::uint64_t server_cpu_ns = 0;
  TimeNs elapsed = 0;
  bool ok = false;

  double throughput_rps() const {
    return elapsed > 0 ? static_cast<double>(completed) / ToSeconds(elapsed) : 0.0;
  }
};

inline KvRunResult RunKv(KvRunOptions opt) {
  TestHarness env(opt.cost);
  KvRunResult out;

  HostOptions server_opts;
  HostOptions client_opts;
  client_opts.charges_clock = false;
  if (opt.kind == "catmint") {
    server_opts.with_rdma = true;
    server_opts.with_nic = false;
    server_opts.with_kernel = false;
    client_opts.with_rdma = true;
    client_opts.with_nic = false;
    client_opts.with_kernel = false;
  }
  auto& sh = env.AddHost("server", "10.0.0.1", server_opts);

  std::unique_ptr<DemiKvServer> demi_server;
  std::unique_ptr<PosixKvServer> posix_server;
  KvEngine* engine = nullptr;
  if (opt.kind == "posix") {
    posix_server = std::make_unique<PosixKvServer>(sh.kernel.get(), kKvPort);
    engine = &posix_server->engine();
  } else {
    LibOS* sl = opt.kind == "catnip"   ? static_cast<LibOS*>(&env.Catnip(sh))
                : opt.kind == "catnap" ? static_cast<LibOS*>(&env.Catnap(sh))
                                       : static_cast<LibOS*>(&env.Catmint(sh));
    demi_server = std::make_unique<DemiKvServer>(sl, kKvPort);
    engine = &demi_server->engine();
  }

  // Preload the store (control path; not measured).
  {
    KvWorkload loader(opt.workload);
    for (std::uint64_t k = 0; k < opt.workload.num_keys; ++k) {
      (void)engine->Execute(loader.LoadCommand(k));
    }
  }
  const std::uint64_t cpu0 = sh.cpu->busy_ns();
  const Counters counters0 = sh.cpu->counters();
  (void)counters0;

  std::vector<std::unique_ptr<KvWorkload>> workloads;
  std::vector<std::unique_ptr<DemiKvClient>> demi_clients;
  std::vector<std::unique_ptr<PosixKvClient>> posix_clients;
  for (int i = 0; i < opt.clients; ++i) {
    auto& ch = env.AddHost("client" + std::to_string(i),
                           "10.0.1." + std::to_string(1 + i), client_opts);
    KvWorkloadConfig wcfg = opt.workload;
    wcfg.seed = opt.workload.seed + 7919 * static_cast<std::uint64_t>(i + 1);
    workloads.push_back(std::make_unique<KvWorkload>(wcfg));
    if (opt.kind == "posix") {
      posix_clients.push_back(std::make_unique<PosixKvClient>(
          ch.kernel.get(), Endpoint{sh.ip, kKvPort}, workloads.back().get(),
          opt.requests_per_client, opt.client_fragments, opt.fragment_gap_ns));
    } else {
      LibOS* cl = opt.kind == "catnip"   ? static_cast<LibOS*>(&env.Catnip(ch))
                  : opt.kind == "catnap" ? static_cast<LibOS*>(&env.Catnap(ch))
                                         : static_cast<LibOS*>(&env.Catmint(ch));
      demi_clients.push_back(std::make_unique<DemiKvClient>(
          cl, Endpoint{sh.ip, kKvPort}, workloads.back().get(), opt.requests_per_client));
    }
  }

  const TimeNs start = env.sim().now();
  out.ok = env.RunUntil(
      [&] {
        for (const auto& c : demi_clients) {
          if (!c->done()) {
            return false;
          }
        }
        for (const auto& c : posix_clients) {
          if (!c->done()) {
            return false;
          }
        }
        return true;
      },
      3600 * kSecond);
  out.elapsed = env.sim().now() - start;

  for (const auto& c : demi_clients) {
    out.latency.Merge(c->latency());
    out.completed += c->completed();
    out.ok = out.ok && !c->failed();
  }
  for (const auto& c : posix_clients) {
    out.latency.Merge(c->latency());
    out.completed += c->completed();
  }
  if (demi_server) {
    out.server_requests = demi_server->requests();
  }
  if (posix_server) {
    out.server_requests = posix_server->stats().requests;
    out.incomplete_scans = posix_server->stats().incomplete_scans;
  }
  out.server_counters = sh.cpu->counters();
  out.server_cpu_ns = sh.cpu->busy_ns() - cpu0;
  return out;
}

}  // namespace demi::bench

#endif  // BENCH_KV_RUNNERS_H_
