// E2 — SOSP'21-style headline: a Redis-like KV store (90% GET, Zipf keys) over every
// library OS vs the POSIX baseline, sweeping the closed-loop client count for a
// throughput/latency picture.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/kv_runners.h"

namespace demi {
namespace {

int Run() {
  bench::Header("E2", "KV store throughput/latency across library OSes",
                "the Demikernel KV server outperforms the POSIX baseline in both "
                "throughput and latency; the application code is identical across "
                "libOSes");
  CostModel cost;
  bench::PrintCostModel(cost);

  KvWorkloadConfig wcfg;
  wcfg.num_keys = 2000;
  wcfg.get_ratio = 0.9;
  wcfg.zipf_theta = 0.99;
  wcfg.value_bytes = 256;

  std::printf("90%% GET / 10%% SET, zipf(0.99) over %llu keys, 256B values\n\n",
              static_cast<unsigned long long>(wcfg.num_keys));
  bench::Row("%-9s %-9s | %12s %10s %10s %10s\n", "libOS", "clients", "req/s", "p50 ns",
             "p99 ns", "cpu/req");
  bench::Row("--------------------------------------------------------------------\n");

  bool shape_ok = true;
  double posix_peak = 0, catnip_peak = 0, catmint_p50_1 = 0, posix_p50_1 = 0;
  for (const char* kind : {"posix", "catnap", "catnip", "catmint"}) {
    for (const int clients : {1, 4, 8}) {
      bench::KvRunOptions opt;
      opt.cost = cost;
      opt.kind = kind;
      opt.clients = clients;
      opt.requests_per_client = 1200 / clients + 200;
      opt.workload = wcfg;
      auto r = bench::RunKv(opt);
      const double cpu_per_req =
          static_cast<double>(r.server_cpu_ns) / static_cast<double>(r.completed);
      bench::Row("%-9s %-9d | %12.0f %10llu %10llu %10.0f\n", kind, clients,
                 r.throughput_rps(), static_cast<unsigned long long>(r.latency.P50()),
                 static_cast<unsigned long long>(r.latency.P99()), cpu_per_req);
      shape_ok = shape_ok && r.ok;
      if (std::string(kind) == "posix" && clients == 8) {
        posix_peak = r.throughput_rps();
      }
      if (std::string(kind) == "catnip" && clients == 8) {
        catnip_peak = r.throughput_rps();
      }
      if (std::string(kind) == "catmint" && clients == 1) {
        catmint_p50_1 = static_cast<double>(r.latency.P50());
      }
      if (std::string(kind) == "posix" && clients == 1) {
        posix_p50_1 = static_cast<double>(r.latency.P50());
      }
    }
    bench::Row("--------------------------------------------------------------------\n");
  }

  std::printf("\npeak throughput: catnip/posix = %.2fx; unloaded latency: "
              "posix/catmint = %.2fx\n",
              catnip_peak / posix_peak, posix_p50_1 / catmint_p50_1);
  bench::Verdict(shape_ok && catnip_peak > 1.3 * posix_peak &&
                     catmint_p50_1 < posix_p50_1,
                 "kernel-bypass libOSes deliver higher peak throughput and lower "
                 "latency than the POSIX baseline for the same application");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
