// Shared echo-experiment runners used by F1, C5, and E1: one closed-loop client, a
// server in the given architecture, N request-response round trips; returns latency
// plus the server host's counters for cost breakdowns.

#ifndef BENCH_ECHO_RUNNERS_H_
#define BENCH_ECHO_RUNNERS_H_

#include <string>

#include "src/apps/actors.h"
#include "src/core/harness.h"

namespace demi::bench {

struct EchoRun {
  Histogram latency;
  std::uint64_t completed = 0;
  Counters server_counters;
  std::uint64_t server_cpu_ns = 0;
  TimeNs elapsed = 0;
  // End-of-run observability snapshot (per-op latency quantiles, sim internals,
  // recovery trace) of this run's private simulation.
  MetricsSnapshot metrics;
  bool ok = false;
};

constexpr std::uint16_t kEchoPort = 7;

// kind: "catnip" | "catnap" | "catmint" | "posix" | "mtcp"
inline EchoRun RunEcho(const std::string& kind, std::size_t msg_bytes,
                       std::uint64_t requests, CostModel cost = CostModel{}) {
  TestHarness env(cost);
  EchoRun out;

  HostOptions server_opts;
  HostOptions client_opts;
  client_opts.charges_clock = false;
  if (kind == "catmint") {
    server_opts.with_rdma = true;
    server_opts.with_nic = false;
    server_opts.with_kernel = false;
    client_opts.with_rdma = true;
    client_opts.with_nic = false;
    client_opts.with_kernel = false;
  }
  if (kind == "mtcp") {
    server_opts.with_kernel = false;  // mTCP replaces the kernel stack
  }
  auto& sh = env.AddHost("server", "10.0.0.1", server_opts);
  auto& ch = env.AddHost("client", "10.0.0.2", client_opts);

  // Keep every actor alive until the run finishes.
  std::unique_ptr<DemiEchoServer> demi_server;
  std::unique_ptr<DemiEchoClient> demi_client;
  std::unique_ptr<PosixEchoServer> posix_server;
  std::unique_ptr<PosixEchoClient> posix_client;
  std::unique_ptr<MtcpStack> mtcp;
  std::unique_ptr<MtcpEchoServer> mtcp_server;

  auto finished = [&]() -> bool {
    if (demi_client) {
      return demi_client->done();
    }
    return posix_client && posix_client->done();
  };

  if (kind == "catnip" || kind == "catnap" || kind == "catmint") {
    LibOS* sl = kind == "catnip"   ? static_cast<LibOS*>(&env.Catnip(sh))
                : kind == "catnap" ? static_cast<LibOS*>(&env.Catnap(sh))
                                   : static_cast<LibOS*>(&env.Catmint(sh));
    LibOS* cl = kind == "catnip"   ? static_cast<LibOS*>(&env.Catnip(ch))
                : kind == "catnap" ? static_cast<LibOS*>(&env.Catnap(ch))
                                   : static_cast<LibOS*>(&env.Catmint(ch));
    demi_server = std::make_unique<DemiEchoServer>(sl, kEchoPort);
    demi_client =
        std::make_unique<DemiEchoClient>(cl, Endpoint{sh.ip, kEchoPort}, msg_bytes, requests);
  } else if (kind == "posix") {
    posix_server = std::make_unique<PosixEchoServer>(sh.kernel.get(), kEchoPort, msg_bytes);
    posix_client = std::make_unique<PosixEchoClient>(ch.kernel.get(),
                                                     Endpoint{sh.ip, kEchoPort}, msg_bytes,
                                                     requests);
  } else if (kind == "mtcp") {
    MtcpConfig mcfg;
    mcfg.ip = sh.ip;
    mtcp = std::make_unique<MtcpStack>(sh.cpu.get(), sh.nic.get(), mcfg);
    mtcp_server = std::make_unique<MtcpEchoServer>(mtcp.get(), kEchoPort, msg_bytes);
    posix_client = std::make_unique<PosixEchoClient>(ch.kernel.get(),
                                                     Endpoint{sh.ip, kEchoPort}, msg_bytes,
                                                     requests);
  }

  const TimeNs start = env.sim().now();
  out.ok = env.RunUntil(finished, 3600 * kSecond);
  out.elapsed = env.sim().now() - start;
  if (demi_client) {
    out.latency = demi_client->latency();
    out.completed = demi_client->completed();
    out.ok = out.ok && !demi_client->failed();
  } else if (posix_client) {
    out.latency = posix_client->latency();
    out.completed = posix_client->completed();
  }
  out.server_counters = sh.cpu->counters();
  out.server_cpu_ns = sh.cpu->busy_ns();
  out.metrics = env.sim().metrics().Snapshot(env.sim().counters(), env.sim().now());
  return out;
}

}  // namespace demi::bench

#endif  // BENCH_ECHO_RUNNERS_H_
