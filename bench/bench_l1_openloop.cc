// L1 — open-loop million-connection load harness with SLO-grade tail reporting.
//
// Two claims, both prerequisites for credible "is the OS dead?" load experiments:
//
//  1. The timer wheel gives flat (O(1)) schedule/cancel cost regardless of how many
//     timers are pending, where the binary heap degrades as O(log n). At 10^6
//     pending arrival timers — one per connection — the scheduler must not become
//     the bottleneck of the load generator itself.
//
//  2. An open-loop sweep over offered load traces the classic throughput-vs-tail
//     curve: achieved throughput tracks offered load until the server saturates,
//     and p99/p99.9 latency explodes past the knee. Latency is measured from the
//     *intended* send time (the arrival-timer due time), so queueing anywhere in
//     the pipeline — including the client-side backlog — lands in the tail
//     (no coordinated omission).
//
// Environment:
//   BENCH_SMOKE=1         10^4 connections, fewer sweep points, smaller timer sets
//                         (ctest smoke); default is the full 10^6-connection sweep.
//   BENCH_OPENLOOP_OUT    where to write the sweep json (default: skip the file;
//                         the bench always drops a metrics snapshot via
//                         BENCH_METRICS_DIR like the other benches).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/load/open_loop_runner.h"
#include "src/sim/simulation.h"

namespace demi {
namespace {

double WallNs() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

// Wall-clock cost of one schedule+cancel pair with `pending` timers resident.
// The resident set is scheduled far in the future and never fires; the measured
// ops churn a small window of extra timers on top of it, exactly like a
// million-connection fleet redrawing arrival timers.
double ScheduleCancelNs(SchedulerKind kind, std::size_t pending, std::size_t ops) {
  Simulation sim(CostModel{}, kind);
  Rng rng(0x10adULL ^ pending);
  for (std::size_t i = 0; i < pending; ++i) {
    sim.Schedule(1 * kSecond + static_cast<TimeNs>(rng.NextBelow(63 * kSecond)),
                 [] {});
  }
  // Warm + measure: schedule a timer at a random near-term offset, cancel the one
  // scheduled `window` ops ago (a mix of young and old entries, as in a redraw).
  constexpr std::size_t kWindow = 64;
  TimerId ring[kWindow] = {};
  const double t0 = WallNs();
  for (std::size_t i = 0; i < ops; ++i) {
    const std::size_t slot = i % kWindow;
    if (ring[slot] != kInvalidTimer) sim.Cancel(ring[slot]);
    ring[slot] = sim.Schedule(
        1 * kMillisecond + static_cast<TimeNs>(rng.NextBelow(60 * kSecond)), [] {});
  }
  const double t1 = WallNs();
  return (t1 - t0) / static_cast<double>(ops);
}

// Wall-clock cost of popping `pending` resident timers: the heap pays O(log n)
// sift-downs (every pop, including tombstoned cancels), the wheel a cascade plus a
// small per-tick sort. This is where a large pending population actually hurts.
double DrainNs(SchedulerKind kind, std::size_t pending) {
  Simulation sim(CostModel{}, kind);
  Rng rng(0xd7a1ULL ^ pending);
  for (std::size_t i = 0; i < pending; ++i) {
    sim.Schedule(1 * kMillisecond + static_cast<TimeNs>(rng.NextBelow(63 * kSecond)),
                 [] {});
  }
  const double t0 = WallNs();
  sim.RunFor(64 * kSecond);
  const double t1 = WallNs();
  return (t1 - t0) / static_cast<double>(pending);
}

struct TimerPoint {
  std::size_t pending;
  double wheel_ns;
  double heap_ns;
  double wheel_drain_ns;
  double heap_drain_ns;
};

struct SweepRow {
  SweepPoint pt;
};

std::string Json(const std::vector<TimerPoint>& timers,
                 const std::vector<SweepRow>& sweep, const OpenLoopConfig& cfg,
                 bool ramp_ok) {
  char buf[512];
  std::string j = "{\n  \"config\": {";
  std::snprintf(buf, sizeof(buf),
                "\"connections\": %zu, \"client_stacks\": %zu, \"server_ports\": %zu, "
                "\"server_work_ns\": %llu, \"seed\": %llu, \"ramp_ok\": %s",
                cfg.connections, cfg.client_stacks, cfg.server_ports,
                static_cast<unsigned long long>(cfg.server_work_per_request_ns),
                static_cast<unsigned long long>(cfg.seed), ramp_ok ? "true" : "false");
  j += buf;
  j += "},\n  \"timer_schedule_cancel_ns\": [";
  for (std::size_t i = 0; i < timers.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"pending\": %zu, \"wheel\": %.1f, \"heap\": %.1f, "
                  "\"wheel_drain\": %.1f, \"heap_drain\": %.1f}",
                  i ? "," : "", timers[i].pending, timers[i].wheel_ns,
                  timers[i].heap_ns, timers[i].wheel_drain_ns,
                  timers[i].heap_drain_ns);
    j += buf;
  }
  j += "\n  ],\n  \"sweep\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i].pt;
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"offered_rps\": %.0f, \"achieved_rps\": %.0f, \"issued\": %llu, "
        "\"completed\": %llu, \"latency_ns\": {\"p50\": %llu, \"p99\": %llu, "
        "\"p999\": %llu, \"mean\": %.0f, \"max\": %llu}}",
        i ? "," : "", p.offered_rps, p.achieved_rps,
        static_cast<unsigned long long>(p.issued),
        static_cast<unsigned long long>(p.completed),
        static_cast<unsigned long long>(p.latency.p50),
        static_cast<unsigned long long>(p.latency.p99),
        static_cast<unsigned long long>(p.latency.p999), p.latency.mean,
        static_cast<unsigned long long>(p.latency.max));
    j += buf;
  }
  j += "\n  ]\n}\n";
  return j;
}

int Run() {
  const bool smoke = []() {
    const char* s = std::getenv("BENCH_SMOKE");
    return s != nullptr && s[0] == '1';
  }();

  bench::Header("L1", "open-loop load harness: timer wheel + offered-load sweep",
                "O(1) timers keep a 10^6-connection open-loop generator honest; the "
                "sweep shows throughput tracking offered load to the knee and the "
                "p99/p99.9 tail exploding past it");

  // --- Section 1: timer cost vs pending-timer population -----------------------
  // Always full-size: 3M timer ops take a couple of wall seconds even in smoke
  // mode, and the flat-cost claim is specifically about the 10^5..10^6 regime.
  // The low-occupancy points (16, 256 pending in a 4096-slot wheel) exercise the
  // word-scan occupancy bitmap: a near-empty wheel must find its next armed slot
  // by scanning 64 slots per word, not by walking empties one by one.
  const std::vector<std::size_t> sizes{16, 256, 1'000, 10'000, 100'000, 1'000'000};
  const std::size_t ops = 200'000;
  // Throwaway round: warm the allocator and code paths so the first measured
  // point is not polluted by cold-start effects.
  (void)ScheduleCancelNs(SchedulerKind::kTimerWheel, 1'000, ops / 8);
  (void)ScheduleCancelNs(SchedulerKind::kBinaryHeap, 1'000, ops / 8);
  std::vector<TimerPoint> timers;
  std::printf("timer wall cost vs pending population (%zu schedule+cancel pairs; "
              "drain = pop all pending):\n\n",
              ops);
  bench::Row("%12s | %12s %12s | %12s %12s %10s\n", "pending", "wheel s+c",
             "heap s+c", "wheel drain", "heap drain", "heap/wheel");
  bench::Row("%12s | %12s %12s | %12s %12s %10s\n", "", "ns/pair", "ns/pair",
             "ns/pop", "ns/pop", "(drain)");
  for (std::size_t n : sizes) {
    TimerPoint tp{n, ScheduleCancelNs(SchedulerKind::kTimerWheel, n, ops),
                  ScheduleCancelNs(SchedulerKind::kBinaryHeap, n, ops),
                  DrainNs(SchedulerKind::kTimerWheel, n),
                  DrainNs(SchedulerKind::kBinaryHeap, n)};
    bench::Row("%12zu | %12.1f %12.1f | %12.1f %12.1f %9.1fx\n", tp.pending,
               tp.wheel_ns, tp.heap_ns, tp.wheel_drain_ns, tp.heap_drain_ns,
               tp.heap_drain_ns / tp.wheel_drain_ns);
    timers.push_back(tp);
  }
  // Growth verdicts compare the 10^3 point against the 10^6 point: the flat-cost
  // claim is about scaling INTO the dense regime. The low-occupancy points above
  // are reported for the sparse-drain behaviour but kept out of the baseline —
  // per-pop cost at 16 pending is dominated by fixed per-drain overhead.
  const TimerPoint& base = *std::find_if(
      timers.begin(), timers.end(),
      [](const TimerPoint& tp) { return tp.pending == 1'000; });
  const double wheel_growth = timers.back().wheel_ns / base.wheel_ns;
  const double heap_growth = timers.back().heap_ns / base.heap_ns;
  const double wheel_drain_growth =
      timers.back().wheel_drain_ns / base.wheel_drain_ns;
  const double heap_drain_growth =
      timers.back().heap_drain_ns / base.heap_drain_ns;
  std::printf("\ngrowth %zu -> %zu pending: schedule+cancel wheel %.2fx / heap "
              "%.2fx, drain wheel %.2fx / heap %.2fx\n",
              base.pending, timers.back().pending, wheel_growth,
              heap_growth, wheel_drain_growth, heap_drain_growth);

  // --- Section 2: offered-load sweep -------------------------------------------
  OpenLoopConfig cfg;
  cfg.connections = smoke ? 10'000 : 1'000'000;
  cfg.client_stacks = 8;
  cfg.server_ports = 64;
  cfg.server_work_per_request_ns = 500;
  cfg.workload.request_bytes = 64;
  cfg.seed = 1;
  cfg.scheduler = SchedulerKind::kTimerWheel;

  // Rates bracket the server's service capacity (~500ns app work + per-packet
  // stack costs put the knee in the high hundreds of krps); the last point is
  // deliberately past it so the tail blow-up is on the curve.
  const std::vector<double> rates =
      smoke ? std::vector<double>{25'000, 100'000, 400'000, 1'200'000}
            : std::vector<double>{50'000, 100'000, 200'000, 400'000, 800'000,
                                  1'600'000};
  const TimeNs warmup = smoke ? 5 * kMillisecond : 20 * kMillisecond;
  const TimeNs measure = smoke ? 20 * kMillisecond : 50 * kMillisecond;

  std::printf("\nramping %zu connections over %zu client stacks x %zu server ports "
              "(batch %zu)...\n",
              cfg.connections, cfg.client_stacks, cfg.server_ports, cfg.ramp_batch);
  const double ramp_t0 = WallNs();
  OpenLoopRunner runner(cfg);
  const bool ramp_ok = runner.Ramp();
  std::printf("ramp: %s, %zu established / %llu accepted (%.1fs wall)\n\n",
              ramp_ok ? "ok" : "FAILED", runner.established_connections(),
              static_cast<unsigned long long>(runner.accepted_connections()),
              (WallNs() - ramp_t0) / 1e9);

  std::vector<SweepRow> sweep;
  bench::Row("%14s %14s %10s %10s %10s %10s %10s\n", "offered rps", "achieved rps",
             "p50 us", "p99 us", "p99.9 us", "max us", "completed");
  bench::Row("-----------------------------------------------------------------"
             "-----------------\n");
  for (double rate : rates) {
    SweepPoint pt = runner.RunPoint(rate, warmup, measure);
    bench::Row("%14.0f %14.0f %10.1f %10.1f %10.1f %10.1f %10llu\n", pt.offered_rps,
               pt.achieved_rps, static_cast<double>(pt.latency.p50) / 1e3,
               static_cast<double>(pt.latency.p99) / 1e3,
               static_cast<double>(pt.latency.p999) / 1e3,
               static_cast<double>(pt.latency.max) / 1e3,
               static_cast<unsigned long long>(pt.completed));
    sweep.push_back(SweepRow{pt});
  }
  runner.StopLoad();

  const std::string json = Json(timers, sweep, cfg, ramp_ok);
  bench::WriteMetricsFile("bench_l1_openloop", json);
  if (const char* out = std::getenv("BENCH_OPENLOOP_OUT")) {
    if (std::FILE* f = std::fopen(out, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("\nwrote sweep to %s\n", out);
    }
  }

  // Shape checks. The first point must be comfortably under the knee and the last
  // comfortably past it; in between the curve must behave like an open-loop system:
  // achieved throughput tracks offered load until saturation, then plateaus while
  // the tail explodes.
  const SweepPoint& lo = sweep.front().pt;
  const SweepPoint& hi = sweep.back().pt;
  const bool under_knee_tracks = lo.achieved_rps > 0.85 * lo.offered_rps;
  const bool saturates = hi.achieved_rps < 0.9 * hi.offered_rps;
  const bool tail_explodes = hi.latency.p99 > 8 * lo.latency.p99;
  const bool tail_ordered = hi.latency.p999 >= hi.latency.p99 &&
                            hi.latency.p99 >= hi.latency.p50;
  // Timer shape. Schedule+cancel: random-priority heap inserts are O(1) average
  // and cancels are tombstoned, so BOTH structures are flat there up to memory
  // effects (at 10^6 pending the shared id->callback bookkeeping dominates both);
  // the wheel must stay within memory-hierarchy noise of flat and at parity with
  // the heap. Drain: the heap pays an O(log n) cache-hostile sift-down per pop —
  // that cost must grow with population while the wheel's stays flat (a sparse
  // wheel actually gets CHEAPER per pop as density rises and cascade work
  // amortizes over more entries per slot).
  // These are wall-clock measurements, so they only gate the verdict in the full
  // run: under ctest smoke the box may be shared and the ratios are not stable
  // enough to fail CI on (the sweep checks below are virtual-time and exact).
  const bool wheel_flat = wheel_growth < 5.0 &&
                          timers.back().wheel_ns < 1.5 * timers.back().heap_ns;
  const bool wheel_drain_flat = wheel_drain_growth < 2.5;
  const bool heap_degrades = heap_drain_growth > 3.0;
  const bool timer_ok = wheel_flat && wheel_drain_flat && heap_degrades;
  if (smoke && !timer_ok) {
    std::printf("\n[info] timer shape outside full-run thresholds (wall-clock "
                "noise tolerated in smoke mode)\n");
  }

  bench::Verdict(ramp_ok && under_knee_tracks && saturates && tail_explodes &&
                     tail_ordered && (smoke || timer_ok),
                 "wheel cost insensitive to pending population (heap pop degrades "
                 "log-linearly); throughput tracks offered load to the knee; "
                 "p99/p99.9 blows up past saturation");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
