// F1 — Figure 1: traditional architecture vs kernel-bypass architecture.
//
// The figure is qualitative (where the data path runs); we quantify it: per-request
// server-side cost breakdown for the same echo application over the legacy kernel
// (app -> syscall -> kernel stack -> device) and over Catnip (app -> libOS -> device).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/echo_runners.h"

namespace demi {
namespace {

struct Breakdown {
  double syscall_ns = 0;
  double copy_ns = 0;
  double stack_ns = 0;  // protocol processing (kernel or user cost profile)
  double irq_ns = 0;
  double app_other_ns = 0;
  double total_ns = 0;
  double rtt_p50 = 0;
};

Breakdown Analyze(const bench::EchoRun& run, const CostModel& cost, bool kernel_path,
                  std::uint64_t requests) {
  Breakdown b;
  const auto& c = run.server_counters;
  const double n = static_cast<double>(requests);
  b.syscall_ns = static_cast<double>(c.Get(Counter::kSyscalls) * cost.syscall_ns) / n;
  b.copy_ns = static_cast<double>(c.Get(Counter::kBytesCopied)) * cost.copy_ns_per_byte / n;
  const double stack_unit = kernel_path
                                ? static_cast<double>(cost.kernel_stack_rx_ns + cost.kernel_stack_tx_ns) / 2
                                : static_cast<double>(cost.user_stack_rx_ns + cost.user_stack_tx_ns) / 2;
  b.stack_ns = static_cast<double>(c.Get(Counter::kPacketsRx) + c.Get(Counter::kPacketsTx)) *
               stack_unit / n;
  b.irq_ns = static_cast<double>(c.Get(Counter::kInterrupts) * cost.interrupt_ns +
                                 c.Get(Counter::kContextSwitches) * cost.context_switch_ns) /
             n;
  b.total_ns = static_cast<double>(run.server_cpu_ns) / n;
  b.app_other_ns = b.total_ns - b.syscall_ns - b.copy_ns - b.stack_ns - b.irq_ns;
  b.rtt_p50 = static_cast<double>(run.latency.P50());
  return b;
}

int Run() {
  bench::Header("F1", "traditional vs kernel-bypass data path (Figure 1)",
                "kernel-bypass removes the OS kernel from the I/O path; the remaining "
                "per-I/O cost is the device and the (now user-level) I/O stack");
  CostModel cost;
  bench::PrintCostModel(cost);

  constexpr std::uint64_t kRequests = 2000;
  constexpr std::size_t kMsg = 64;
  auto posix = bench::RunEcho("posix", kMsg, kRequests, cost);
  auto catnip = bench::RunEcho("catnip", kMsg, kRequests, cost);

  std::printf("per-request server-side CPU breakdown, 64B echo, %llu requests:\n\n",
              static_cast<unsigned long long>(kRequests));
  const Breakdown bp = Analyze(posix, cost, /*kernel_path=*/true, kRequests);
  const Breakdown bc = Analyze(catnip, cost, /*kernel_path=*/false, kRequests);

  bench::Row("%-24s %16s %16s\n", "component (ns/req)", "traditional", "kernel-bypass");
  bench::Row("%-24s %16.0f %16.0f\n", "syscall crossings", bp.syscall_ns, bc.syscall_ns);
  bench::Row("%-24s %16.0f %16.0f\n", "data copies", bp.copy_ns, bc.copy_ns);
  bench::Row("%-24s %16.0f %16.0f\n", "network stack", bp.stack_ns, bc.stack_ns);
  bench::Row("%-24s %16.0f %16.0f\n", "interrupts/ctx-switch", bp.irq_ns, bc.irq_ns);
  bench::Row("%-24s %16.0f %16.0f\n", "app + libOS + other", bp.app_other_ns,
             bc.app_other_ns);
  bench::Row("%-24s %16.0f %16.0f\n", "TOTAL server CPU", bp.total_ns, bc.total_ns);
  bench::Row("%-24s %16.0f %16.0f\n", "client-observed RTT p50", bp.rtt_p50, bc.rtt_p50);

  const double cpu_ratio = bp.total_ns / bc.total_ns;
  const double rtt_ratio = bp.rtt_p50 / bc.rtt_p50;
  std::printf("\nkernel-bypass advantage: %.2fx less server CPU, %.2fx lower RTT\n",
              cpu_ratio, rtt_ratio);
  std::printf("kernel components (syscall+copy+irq) on the bypass path: %.0f ns\n",
              bc.syscall_ns + bc.copy_ns + bc.irq_ns);

  bench::Verdict(posix.ok && catnip.ok && cpu_ratio > 1.5 && rtt_ratio > 1.2 &&
                     bc.syscall_ns + bc.copy_ns + bc.irq_ns < 50.0,
                 "the kernel vanishes from the bypass data path and both CPU and RTT "
                 "drop substantially");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
