// E1 — SOSP'21-style headline: echo RTT for the same Demikernel application over
// every library OS, against the POSIX baseline. The application code is IDENTICAL
// across Catnap/Catnip/Catmint — only the libOS (and thus the device) changes, which
// is the portability claim of the paper's abstract.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/echo_runners.h"

namespace demi {
namespace {

int Run() {
  bench::Header("E1", "echo RTT across library OSes (SOSP'21-style headline)",
                "every Demikernel libOS beats the POSIX baseline; RDMA (catmint) has "
                "the lowest latency; catnap pays kernel costs and only buys portability");
  CostModel cost;
  bench::PrintCostModel(cost);

  constexpr std::uint64_t kRequests = 2000;
  constexpr std::size_t kMsg = 64;

  struct Line {
    const char* key;  // metrics-export key (RunEcho kind)
    const char* name;
    const char* substrate;
    bench::EchoRun run;
  };
  Line lines[] = {
      {"posix", "posix (baseline)", "kernel TCP + epoll",
       bench::RunEcho("posix", kMsg, kRequests, cost)},
      {"catnap", "catnap", "kernel sockets", bench::RunEcho("catnap", kMsg, kRequests, cost)},
      {"catnip", "catnip", "DPDK-style NIC + user TCP",
       bench::RunEcho("catnip", kMsg, kRequests, cost)},
      {"catmint", "catmint", "RDMA verbs", bench::RunEcho("catmint", kMsg, kRequests, cost)},
  };

  bench::Row("%-18s %-26s %10s %10s %10s %9s %10s %9s %9s\n", "libOS", "substrate",
             "p50 ns", "p99 ns", "mean ns", "sys/req", "copyB/req", "dbell/req",
             "pkts/req");
  bench::Row("--------------------------------------------------------------------------------------------------------------------\n");
  for (const Line& line : lines) {
    const double n = static_cast<double>(kRequests);
    // Doorbells and packets per request on the server: the doorbell-coalescing and
    // delayed-ACK win shows up here as fewer MMIOs and fewer wire packets for the
    // same request count.
    bench::Row("%-18s %-26s %10llu %10llu %10.0f %9.1f %10.0f %9.2f %9.2f\n", line.name,
               line.substrate, static_cast<unsigned long long>(line.run.latency.P50()),
               static_cast<unsigned long long>(line.run.latency.P99()),
               line.run.latency.mean(),
               static_cast<double>(line.run.server_counters.Get(Counter::kSyscalls)) / n,
               static_cast<double>(line.run.server_counters.Get(Counter::kBytesCopied)) / n,
               static_cast<double>(line.run.server_counters.Get(Counter::kDoorbells)) / n,
               static_cast<double>(line.run.server_counters.Get(Counter::kPacketsTx) +
                                   line.run.server_counters.Get(Counter::kPacketsRx)) /
                   n);
  }

  // One metrics snapshot per run (each RunEcho owns a private simulation), keyed by
  // the libOS kind, so the bench harness can fold per-op latency quantiles into
  // BENCH_datapath.json.
  std::string metrics = "{";
  bool first = true;
  for (const Line& line : lines) {
    metrics += first ? "\"" : ",\"";
    first = false;
    metrics += line.key;
    metrics += "\":";
    metrics += line.run.metrics.ToJson();
  }
  metrics += "}";
  bench::WriteMetricsFile("bench_e1_echo", metrics);

  const auto p50 = [&](int i) { return lines[i].run.latency.P50(); };
  const bool all_ok =
      lines[0].run.ok && lines[1].run.ok && lines[2].run.ok && lines[3].run.ok;
  const bool ordering = p50(3) < p50(2) && p50(2) < p50(0) &&  // catmint < catnip < posix
                        p50(1) <= p50(0) * 12 / 10;            // catnap ~ posix (10-20%)

  std::printf("\ncatnap tracks the baseline (it still pays syscalls+copies — it buys "
              "portability, not speed);\ncatnip beats the kernel by %.1fx; catmint's "
              "NIC-offloaded transport is lowest at %.1fx.\n",
              static_cast<double>(p50(0)) / static_cast<double>(p50(2)),
              static_cast<double>(p50(0)) / static_cast<double>(p50(3)));
  bench::Verdict(all_ok && ordering,
                 "catmint < catnip < posix ~ catnap in RTT, same application code");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
