// S1 — multi-core scale-out: RSS-sharded libOS workers with ZygOS-style
// completion stealing (DESIGN.md §13).
//
// Two claims:
//
//  1. Shared-nothing RSS sharding scales: N workers, each with its own core, NIC
//     queue pair, flow table, and connection shard, deliver near-linear saturated
//     throughput — >= 3x at 4 cores for both echo and KV — because nothing on the
//     data path is shared, exactly the scaling argument kernel-bypass stacks make.
//
//  2. Pure sharding is fragile under skew: concentrate the offered load on one
//     shard and its tail collapses while its neighbours idle. ZygOS-style stealing
//     of ready completions (with explicit cross-core probe/IPI/cache-line costs)
//     absorbs the imbalance: steal-on p99 <= 0.5x steal-off at the same skewed
//     offered load.
//
// Both arms of every comparison run the same seed, so the curves differ only by
// the knob under test. A final same-seed double run checks bit determinism of the
// whole multi-core schedule, stealing included.
//
// Environment:
//   BENCH_SMOKE=1   fewer connections and shorter windows (ctest smoke).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/load/smp_harness.h"
#include "src/sim/counters.h"

namespace demi {
namespace {

struct ScalePoint {
  int workers;
  double offered_rps;
  SweepPoint pt;
};

struct Shape {
  bool smoke;
  std::size_t conns_per_worker;
  TimeNs warmup;
  TimeNs measure;
};

SmpHarnessConfig BaseConfig(const Shape& shape, int workers, WorkloadKind kind) {
  SmpHarnessConfig cfg;
  cfg.workers = workers;
  // The SAME connection fleet at every worker count: otherwise per-connection
  // pipeline limits scale with the fleet and masquerade as core scaling.
  cfg.connections = shape.conns_per_worker * 4;
  cfg.client_stacks = 4;
  cfg.ramp_batch = 256;
  cfg.seed = 1;
  // 4us of app work per request puts the per-core knee around 200 krps: large
  // enough that worker-core work dominates shared ingress costs (the scaling
  // claim is about the sharded data path, not the fabric model).
  cfg.server_request_cpu_ns = 4000;
  cfg.workload.kind = kind;
  return cfg;
}

ScalePoint SaturatedThroughput(const Shape& shape, int workers, WorkloadKind kind) {
  SmpHarnessConfig cfg = BaseConfig(shape, workers, kind);
  SmpHarness h(cfg);
  if (!h.Ramp()) {
    std::printf("[SHAPE-FAIL] ramp failed at %d workers\n", workers);
    std::exit(1);
  }
  // Offered load well past N cores' aggregate capacity: achieved throughput at
  // this point IS the saturated service rate.
  const double offered = 400'000.0 * workers;
  ScalePoint sp{workers, offered,
                h.RunPoint(offered, shape.warmup, shape.measure, "saturate")};
  h.StopLoad();
  return sp;
}

struct SkewArm {
  SweepPoint pt;
  std::uint64_t stolen;
  std::uint64_t steal_attempts;
  std::size_t shard_conns[4];
  std::uint64_t shard_served[4];
};

SkewArm SkewedTail(const Shape& shape, bool steal) {
  SmpHarnessConfig cfg = BaseConfig(shape, 4, WorkloadKind::kEcho);
  cfg.steal = steal;
  cfg.shard_skew = 1.5;
  SmpHarness h(cfg);
  if (!h.Ramp()) {
    std::printf("[SHAPE-FAIL] skew ramp failed (steal=%d)\n", steal ? 1 : 0);
    std::exit(1);
  }
  // With skew 1.5 the hottest shard carries ~60% of the aggregate: 360 krps
  // puts ~216 krps on one core (past its per-core service rate) while total
  // demand stays well under 4-core capacity (~450 krps, see section 1). That
  // gap matters twice: thieves only probe when their own ring is empty, so the
  // neighbours must have genuine idle cycles — and the hot shard must be
  // genuinely past ITS capacity or there is nothing to steal. Steal-off, the
  // hot shard's ready ring diverges for the whole window; steal-on, idle
  // neighbours drain it.
  SkewArm arm;
  arm.pt = h.RunPoint(360'000, shape.warmup, 2 * shape.measure, "skew");
  arm.stolen = h.pool().total_stolen();
  arm.steal_attempts = h.sim().counters().Get(Counter::kStealAttempts);
  for (int w = 0; w < 4; ++w) {
    arm.shard_conns[w] = h.shard_connections(w);
    arm.shard_served[w] = h.pool().worker(w).requests_served();
  }
  h.StopLoad();
  return arm;
}

struct Digest {
  TimeNs end_clock;
  std::uint64_t completed;
  std::uint64_t stolen;

  bool operator==(const Digest&) const = default;
};

Digest DeterminismRun(const Shape& shape) {
  SmpHarnessConfig cfg = BaseConfig(shape, 4, WorkloadKind::kKv);
  cfg.connections = 64;
  cfg.client_stacks = 2;
  cfg.shard_skew = 1.5;  // skewed so the deterministic schedule includes steals
  cfg.seed = 11;
  SmpHarness h(cfg);
  if (!h.Ramp()) {
    std::printf("[SHAPE-FAIL] determinism ramp failed\n");
    std::exit(1);
  }
  std::ignore = h.RunPoint(360'000, shape.warmup, shape.measure, "det");
  return Digest{h.sim().now(), h.completed_total(), h.pool().total_stolen()};
}

const char* KindName(WorkloadKind k) {
  return k == WorkloadKind::kEcho ? "echo" : "kv";
}

std::string Json(const std::vector<ScalePoint>& echo,
                 const std::vector<ScalePoint>& kv, const SkewArm& on,
                 const SkewArm& off, bool deterministic, const Shape& shape) {
  char buf[512];
  std::string j = "{\n  \"config\": {";
  std::snprintf(buf, sizeof(buf),
                "\"conns_per_worker\": %zu, \"warmup_ns\": %lld, \"measure_ns\": "
                "%lld, \"request_cpu_ns\": 4000, \"smoke\": %s",
                shape.conns_per_worker, static_cast<long long>(shape.warmup),
                static_cast<long long>(shape.measure),
                shape.smoke ? "true" : "false");
  j += buf;
  j += "},\n";
  for (const auto* curve : {&echo, &kv}) {
    j += curve == &echo ? "  \"scaling_echo\": [" : "  \"scaling_kv\": [";
    for (std::size_t i = 0; i < curve->size(); ++i) {
      const ScalePoint& s = (*curve)[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\n    {\"workers\": %d, \"offered_rps\": %.0f, "
                    "\"achieved_rps\": %.0f, \"completed\": %llu}",
                    i ? "," : "", s.workers, s.offered_rps, s.pt.achieved_rps,
                    static_cast<unsigned long long>(s.pt.completed));
      j += buf;
    }
    j += "\n  ],\n";
  }
  for (const auto* arm : {&on, &off}) {
    j += arm == &on ? "  \"skew_steal_on\": {" : "  \"skew_steal_off\": {";
    std::snprintf(
        buf, sizeof(buf),
        "\"achieved_rps\": %.0f, \"p50_ns\": %llu, \"p99_ns\": %llu, "
        "\"p999_ns\": %llu, \"stolen\": %llu, \"steal_attempts\": %llu},\n",
        arm->pt.achieved_rps, static_cast<unsigned long long>(arm->pt.latency.p50),
        static_cast<unsigned long long>(arm->pt.latency.p99),
        static_cast<unsigned long long>(arm->pt.latency.p999),
        static_cast<unsigned long long>(arm->stolen),
        static_cast<unsigned long long>(arm->steal_attempts));
    j += buf;
  }
  std::snprintf(buf, sizeof(buf), "  \"deterministic\": %s\n}\n",
                deterministic ? "true" : "false");
  j += buf;
  return j;
}

int Run() {
  const bool smoke = []() {
    const char* s = std::getenv("BENCH_SMOKE");
    return s != nullptr && s[0] == '1';
  }();
  const Shape shape{smoke, smoke ? std::size_t{32} : std::size_t{96},
                    smoke ? 5 * kMillisecond : 10 * kMillisecond,
                    smoke ? 20 * kMillisecond : 40 * kMillisecond};

  bench::Header("S1", "multi-core scale-out: RSS shards + completion stealing",
                "shared-nothing RSS sharding scales >= 3x at 4 cores; ZygOS-style "
                "completion stealing halves p99 under Zipf-skewed shard imbalance");
  bench::PrintCostModel(CostModel{});

  // --- Section 1: saturated throughput vs cores --------------------------------
  std::printf("saturated throughput vs cores (offered 400 krps/core, %lld ms "
              "window):\n\n",
              static_cast<long long>(shape.measure / kMillisecond));
  bench::Row("%8s %8s | %14s %14s %10s %10s\n", "workload", "workers",
             "offered rps", "achieved rps", "speedup", "completed");
  bench::Row("--------------------------------------------------------------------"
             "--\n");
  std::vector<ScalePoint> echo_curve, kv_curve;
  double speedup4[2] = {0, 0};
  for (WorkloadKind kind : {WorkloadKind::kEcho, WorkloadKind::kKv}) {
    std::vector<ScalePoint>& curve =
        kind == WorkloadKind::kEcho ? echo_curve : kv_curve;
    for (int workers : {1, 2, 4}) {
      curve.push_back(SaturatedThroughput(shape, workers, kind));
      const ScalePoint& s = curve.back();
      const double speedup = s.pt.achieved_rps / curve.front().pt.achieved_rps;
      bench::Row("%8s %8d | %14.0f %14.0f %9.2fx %10llu\n", KindName(kind),
                 s.workers, s.offered_rps, s.pt.achieved_rps, speedup,
                 static_cast<unsigned long long>(s.pt.completed));
      if (workers == 4) {
        speedup4[kind == WorkloadKind::kEcho ? 0 : 1] = speedup;
      }
    }
  }

  // --- Section 2: skewed shard load, stealing on vs off ------------------------
  std::printf("\nZipf-skewed shard imbalance (skew 1.5, 360 krps aggregate, 4 "
              "workers; hot shard alone is over one core's capacity):\n\n");
  bench::Row("%10s | %14s %10s %10s %10s %12s\n", "stealing", "achieved rps",
             "p50 us", "p99 us", "p99.9 us", "stolen");
  bench::Row("--------------------------------------------------------------------"
             "--\n");
  const SkewArm off = SkewedTail(shape, false);
  const SkewArm on = SkewedTail(shape, true);
  for (const auto* arm : {&off, &on}) {
    bench::Row("%10s | %14.0f %10.1f %10.1f %10.1f %12llu\n",
               arm == &on ? "on" : "off", arm->pt.achieved_rps,
               static_cast<double>(arm->pt.latency.p50) / 1e3,
               static_cast<double>(arm->pt.latency.p99) / 1e3,
               static_cast<double>(arm->pt.latency.p999) / 1e3,
               static_cast<unsigned long long>(arm->stolen));
    bench::Row("%10s |   per-shard conns %zu/%zu/%zu/%zu, served "
               "%llu/%llu/%llu/%llu\n",
               "", arm->shard_conns[0], arm->shard_conns[1], arm->shard_conns[2],
               arm->shard_conns[3],
               static_cast<unsigned long long>(arm->shard_served[0]),
               static_cast<unsigned long long>(arm->shard_served[1]),
               static_cast<unsigned long long>(arm->shard_served[2]),
               static_cast<unsigned long long>(arm->shard_served[3]));
  }

  // --- Section 3: bit determinism ----------------------------------------------
  const Digest d1 = DeterminismRun(shape);
  const Digest d2 = DeterminismRun(shape);
  const bool deterministic = d1 == d2 && d1.completed > 0;
  std::printf("\nsame-seed double run (4 workers, stealing): clock %lld/%lld, "
              "completed %llu/%llu, stolen %llu/%llu -> %s\n",
              static_cast<long long>(d1.end_clock),
              static_cast<long long>(d2.end_clock),
              static_cast<unsigned long long>(d1.completed),
              static_cast<unsigned long long>(d2.completed),
              static_cast<unsigned long long>(d1.stolen),
              static_cast<unsigned long long>(d2.stolen),
              deterministic ? "identical" : "DIVERGED");
  std::printf("\n");

  bench::WriteMetricsFile(
      "bench_s1_scaling",
      Json(echo_curve, kv_curve, on, off, deterministic, shape));

  const bool scales = speedup4[0] >= 3.0 && speedup4[1] >= 3.0;
  const bool steal_halves_tail =
      on.pt.latency.p99 * 2 <= off.pt.latency.p99 && on.stolen > 0;
  bench::Verdict(scales, "4 workers deliver >= 3x 1-worker saturated throughput "
                         "(echo and KV)");
  bench::Verdict(steal_halves_tail,
                 "under skewed shard load, stealing cuts p99 to <= 0.5x of the "
                 "no-steal tail");
  bench::Verdict(deterministic,
                 "same seed -> bit-identical multi-core run (clock, completions, "
                 "steals)");
  return scales && steal_halves_tail && deterministic ? 0 : 1;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
