// C3 — §4.4's scheduling claims: POSIX epoll (1) requires a second syscall to fetch
// the data after the readiness notification, and (2) wakes every thread blocked on the
// descriptor while only one finds work. Demikernel wait_* returns the data directly
// and wakes exactly the waiter holding the completed qtoken.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/harness.h"

namespace demi {
namespace {

struct HerdResult {
  std::uint64_t wakeups = 0;
  std::uint64_t spurious = 0;
  std::uint64_t syscalls_per_event = 0;
};

// One event delivered to `waiters` logical threads blocked on the same epoll fd.
HerdResult RunPosixHerd(int waiters) {
  TestHarness env;
  auto& sh = env.AddHost("server", "10.0.0.1");
  HostOptions client_opts;
  client_opts.charges_clock = false;
  auto& ch = env.AddHost("client", "10.0.0.2", client_opts);
  SimKernel& kernel = *sh.kernel;

  const int lfd = *kernel.Socket();
  (void)kernel.Bind(lfd, 7000);
  (void)kernel.Listen(lfd);
  const int cfd = *ch.kernel->Socket();
  (void)ch.kernel->Connect(cfd, Endpoint{sh.ip, 7000});
  int sfd = -1;
  env.RunUntil(
      [&] {
        auto r = kernel.Accept(lfd);
        if (r.ok()) {
          sfd = *r;
        }
        return sfd >= 0;
      },
      10 * kSecond);

  const int epfd = *kernel.EpollCreate();
  (void)kernel.EpollAdd(epfd, sfd, kEpollIn);
  for (int i = 0; i < waiters; ++i) {
    (void)kernel.EpollBlock(epfd);
  }

  const std::uint64_t wake0 = sh.cpu->counters().Get(Counter::kWakeups);
  const std::uint64_t spur0 = sh.cpu->counters().Get(Counter::kSpuriousWakeups);
  const std::uint64_t sys0 = sh.cpu->counters().Get(Counter::kSyscalls);

  (void)ch.kernel->WriteSock(cfd, Buffer::CopyOf("one event"));
  env.RunUntil([&] { return kernel.EpollBlockedCount(epfd) == 0; }, 10 * kSecond);

  // The winning thread still needs epoll_wait() to learn which fd, then read() to get
  // the data — the two extra syscalls §4.4 calls out.
  (void)kernel.EpollWait(epfd, 8);
  (void)kernel.ReadSock(sfd, 4096);

  HerdResult out;
  out.wakeups = sh.cpu->counters().Get(Counter::kWakeups) - wake0;
  out.spurious = sh.cpu->counters().Get(Counter::kSpuriousWakeups) - spur0;
  out.syscalls_per_event = sh.cpu->counters().Get(Counter::kSyscalls) - sys0;
  return out;
}

// The same one event via Demikernel: `waiters` outstanding pops on distinct queues,
// one element arrives; wait_any wakes exactly one waiter and hands it the data.
HerdResult RunDemiWait(int waiters) {
  TestHarness env;
  auto& sh = env.AddHost("server", "10.0.0.1");
  auto& libos = env.Catnip(sh);

  // In-memory queues isolate the wakeup semantics from the network.
  std::vector<QDesc> qds;
  std::vector<QToken> tokens;
  for (int i = 0; i < waiters; ++i) {
    qds.push_back(*libos.QueueCreate());
    tokens.push_back(*libos.Pop(qds.back()));
  }
  const std::uint64_t wake0 = sh.cpu->counters().Get(Counter::kWakeups);
  const std::uint64_t spur0 = sh.cpu->counters().Get(Counter::kSpuriousWakeups);
  const std::uint64_t sys0 = sh.cpu->counters().Get(Counter::kSyscalls);

  (void)libos.Push(qds[static_cast<std::size_t>(waiters) / 2], SgArray::FromString("ev"));
  auto r = libos.WaitAny(tokens, 10 * kSecond);

  HerdResult out;
  out.wakeups = sh.cpu->counters().Get(Counter::kWakeups) - wake0;
  out.spurious = sh.cpu->counters().Get(Counter::kSpuriousWakeups) - spur0;
  out.syscalls_per_event = sh.cpu->counters().Get(Counter::kSyscalls) - sys0;
  // The data came back WITH the wakeup (no second call):
  if (!r.ok() || r->second.sga.total_bytes() != 2) {
    out.wakeups = UINT64_MAX;  // flag failure
  }
  return out;
}

int Run() {
  bench::Header("C3", "wakeup semantics: epoll herd vs wait_any (Section 4.4)",
                "epoll wakes every blocked thread per event and needs an extra "
                "syscall for the data; wait_* wakes exactly one waiter and returns "
                "the data directly");
  CostModel cost;
  bench::PrintCostModel(cost);

  bench::Row("%-9s | %-10s %-10s %-12s | %-10s %-10s %-12s\n", "waiters", "epoll",
             "epoll", "epoll sys", "wait_any", "wait_any", "wait_any sys");
  bench::Row("%-9s | %-10s %-10s %-12s | %-10s %-10s %-12s\n", "", "wakeups", "wasted",
             "per event", "wakeups", "wasted", "per event");
  bench::Row("---------------------------------------------------------------------------------\n");

  bool shape_ok = true;
  for (const int waiters : {1, 2, 4, 8, 16}) {
    const HerdResult posix = RunPosixHerd(waiters);
    const HerdResult demi = RunDemiWait(waiters);
    bench::Row("%-9d | %10llu %10llu %12llu | %10llu %10llu %12llu\n", waiters,
               static_cast<unsigned long long>(posix.wakeups),
               static_cast<unsigned long long>(posix.spurious),
               static_cast<unsigned long long>(posix.syscalls_per_event),
               static_cast<unsigned long long>(demi.wakeups),
               static_cast<unsigned long long>(demi.spurious),
               static_cast<unsigned long long>(demi.syscalls_per_event));
    shape_ok = shape_ok && posix.wakeups == static_cast<std::uint64_t>(waiters) &&
               posix.spurious == static_cast<std::uint64_t>(waiters - 1) &&
               demi.wakeups == 1 && demi.spurious == 0 && demi.syscalls_per_event == 0;
  }

  std::printf("\nepoll's cost per event grows with the waiter count; wait_any's is "
              "constant: one wakeup, zero syscalls, data included.\n");
  bench::Verdict(shape_ok, "herd wakeups = waiters (all but one wasted) under epoll; "
                           "exactly one under wait_any, with the data returned in-line");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
