// E3 — §5.3 storage: log appends through the kernel write path (write + fsync:
// syscalls, VFS, page-cache copies, journal-style per-op overhead) vs the Catfish
// libOS writing the device's submission queue directly with a log-native layout.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/block_index.h"
#include "src/core/harness.h"

namespace demi {
namespace {

struct StorageResult {
  double ns_per_append = 0;
  double appends_per_sec = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t nvme_ops = 0;
  bool ok = false;
};

constexpr int kRecords = 300;

StorageResult RunKernelLog(std::size_t record_bytes) {
  TestHarness env;
  HostOptions opts;
  opts.with_nic = false;
  opts.with_block_device = true;
  auto& host = env.AddHost("storage", "10.0.0.1", opts);
  SimKernel& kernel = *host.kernel;

  const std::uint64_t sys0 = host.cpu->counters().Get(Counter::kSyscalls);
  const std::uint64_t cp0 = host.cpu->counters().Get(Counter::kBytesCopied);
  const std::uint64_t nv0 = host.cpu->counters().Get(Counter::kNvmeOps);
  const TimeNs start = env.sim().now();

  const int fd = *kernel.OpenFile("/wal/log", /*create=*/true);
  const std::string record(record_bytes, 'r');
  bool ok = true;
  for (int i = 0; i < kRecords && ok; ++i) {
    ok = kernel.WriteFile(fd, Buffer::CopyOf(record)).ok();
    auto token = kernel.FsyncStart(fd);  // durability per append, like a WAL
    ok = ok && token.ok() &&
         env.RunUntil([&] { return kernel.FsyncDone(*token); }, 60 * kSecond);
  }

  StorageResult out;
  const TimeNs elapsed = env.sim().now() - start;
  out.ns_per_append = static_cast<double>(elapsed) / kRecords;
  out.appends_per_sec = static_cast<double>(kRecords) / ToSeconds(elapsed);
  out.syscalls = host.cpu->counters().Get(Counter::kSyscalls) - sys0;
  out.bytes_copied = host.cpu->counters().Get(Counter::kBytesCopied) - cp0;
  out.nvme_ops = host.cpu->counters().Get(Counter::kNvmeOps) - nv0;
  out.ok = ok;
  return out;
}

// When `metrics_json` is non-null, the run also reads the log back (pop path) and
// stores a full observability snapshot — so the export carries both catfish write
// (push) and read (pop) latency quantiles. The read-back happens after the timed
// append window, so it never skews the ns/append numbers.
StorageResult RunCatfishLog(std::size_t record_bytes, std::string* metrics_json = nullptr) {
  TestHarness env;
  HostOptions opts;
  opts.with_nic = false;
  opts.with_kernel = false;
  opts.with_block_device = true;
  auto& host = env.AddHost("storage", "10.0.0.1", opts);
  CatfishLibOS& libos = env.Catfish(host);

  const std::uint64_t sys0 = host.cpu->counters().Get(Counter::kSyscalls);
  const std::uint64_t cp0 = host.cpu->counters().Get(Counter::kBytesCopied);
  const std::uint64_t nv0 = host.cpu->counters().Get(Counter::kNvmeOps);
  const TimeNs start = env.sim().now();

  const QDesc log = *libos.Creat("/wal/log");
  const std::string record(record_bytes, 'r');
  bool ok = true;
  for (int i = 0; i < kRecords && ok; ++i) {
    auto r = libos.BlockingPush(log, SgArray::FromString(record));
    ok = r.ok() && r->status.ok();  // push completion == durable on the device
  }

  StorageResult out;
  const TimeNs elapsed = env.sim().now() - start;
  out.ns_per_append = static_cast<double>(elapsed) / kRecords;
  out.appends_per_sec = static_cast<double>(kRecords) / ToSeconds(elapsed);
  out.syscalls = host.cpu->counters().Get(Counter::kSyscalls) - sys0;
  out.bytes_copied = host.cpu->counters().Get(Counter::kBytesCopied) - cp0;
  out.nvme_ops = host.cpu->counters().Get(Counter::kNvmeOps) - nv0;
  out.ok = ok;
  if (metrics_json != nullptr) {
    for (int i = 0; i < kRecords && ok; ++i) {
      auto r = libos.BlockingPop(log);
      ok = r.ok() && r->status.ok() && r->sga.total_bytes() == record_bytes;
    }
    out.ok = ok;
    *metrics_json =
        env.sim().metrics().Snapshot(env.sim().counters(), env.sim().now()).ToJson();
  }
  return out;
}

// --- push-down: device-side index descent vs host-driven dependent reads ---

struct IndexResult {
  double us_per_lookup = 0;
  double completions_per_op = 0;  // host CQ entries drained per lookup
  double doorbells_per_op = 0;
  double nvme_per_op = 0;
  std::uint32_t depth = 0;
  bool ok = false;
};

constexpr int kLookups = 200;
constexpr std::size_t kIndexKeys = 512;
constexpr std::size_t kIndexFanout = 4;  // small fanout forces a deep tree

IndexResult RunIndexLookups(bool pushdown) {
  TestHarness env;
  HostOptions opts;
  opts.with_nic = false;
  opts.with_kernel = false;
  opts.with_block_device = true;
  auto& host = env.AddHost("storage", "10.0.0.1", opts);
  CatfishLibOS& libos = env.Catfish(host);

  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  for (std::size_t i = 0; i < kIndexKeys; ++i) {
    entries.emplace_back(10 + 2 * i, (10 + 2 * i) * 7 + 1);
  }
  auto index = BlockIndex::Build(libos, "/idx/kv", entries, kIndexFanout);
  if (!index.ok()) {
    return IndexResult{};
  }
  auto program = libos.InstallPushdownProgram(BlockIndex::LookupProgram());
  if (!program.ok()) {
    return IndexResult{};
  }

  const std::uint64_t cq0 = host.cpu->counters().Get(Counter::kBlockHostCompletions);
  const std::uint64_t db0 = host.cpu->counters().Get(Counter::kDoorbells);
  const std::uint64_t nv0 = host.cpu->counters().Get(Counter::kNvmeOps);
  const TimeNs start = env.sim().now();

  bool ok = true;
  for (int i = 0; i < kLookups && ok; ++i) {
    const auto& [key, value] = entries[(i * 37) % entries.size()];
    if (pushdown) {
      auto token = index->LookupAsync(*program, key);
      ok = token.ok();
      if (ok) {
        auto r = libos.Wait(*token);
        ok = r.ok() && r->status.ok() && BlockIndex::DecodeValue(r->sga) == value;
      }
    } else {
      auto r = index->LookupFromHost(key);
      ok = r.ok() && r->value == value && r->steps == index->depth();
    }
  }

  IndexResult out;
  const TimeNs elapsed = env.sim().now() - start;
  out.us_per_lookup = static_cast<double>(elapsed) / kLookups / 1000.0;
  out.completions_per_op = static_cast<double>(host.cpu->counters().Get(
                               Counter::kBlockHostCompletions) - cq0) / kLookups;
  out.doorbells_per_op =
      static_cast<double>(host.cpu->counters().Get(Counter::kDoorbells) - db0) / kLookups;
  out.nvme_per_op =
      static_cast<double>(host.cpu->counters().Get(Counter::kNvmeOps) - nv0) / kLookups;
  out.depth = index->depth();
  out.ok = ok;
  return out;
}

int Run() {
  bench::Header("E3", "durable log appends: kernel VFS vs Catfish storage queues "
                      "(Section 5.3)",
                "a libOS-owned, log-native layout on a kernel-bypass device removes "
                "syscalls, copies, and filesystem overhead from the persistence path");
  CostModel cost;
  bench::PrintCostModel(cost);

  std::printf("%d durable appends per run:\n\n", kRecords);
  bench::Row("%-8s | %-10s %-12s %-8s %-10s %-8s | %-10s %-12s %-8s %-10s %-8s\n",
             "record", "kernel", "kernel", "kernel", "kernel", "kernel", "catfish",
             "catfish", "catfish", "catfish", "catfish");
  bench::Row("%-8s | %-10s %-12s %-8s %-10s %-8s | %-10s %-12s %-8s %-10s %-8s\n",
             "bytes", "us/op", "ops/s", "sys/op", "copyB/op", "nvme/op", "us/op",
             "ops/s", "sys/op", "copyB/op", "nvme/op");
  bench::Row("----------------------------------------------------------------------------------------------------------------\n");

  bool shape_ok = true;
  double ratio_small = 0;
  std::string metrics_json;
  for (const std::size_t record_bytes : {128u, 1024u, 4096u, 16384u}) {
    const StorageResult kernel = RunKernelLog(record_bytes);
    // Export the observability snapshot from the 4KB run (one representative size).
    const StorageResult catfish =
        RunCatfishLog(record_bytes, record_bytes == 4096 ? &metrics_json : nullptr);
    bench::Row("%-8zu | %10.1f %12.0f %8.1f %10.0f %8.1f | %10.1f %12.0f %8.1f %10.0f %8.1f\n",
               record_bytes, kernel.ns_per_append / 1000.0, kernel.appends_per_sec,
               static_cast<double>(kernel.syscalls) / kRecords,
               static_cast<double>(kernel.bytes_copied) / kRecords,
               static_cast<double>(kernel.nvme_ops) / kRecords,
               catfish.ns_per_append / 1000.0, catfish.appends_per_sec,
               static_cast<double>(catfish.syscalls) / kRecords,
               static_cast<double>(catfish.bytes_copied) / kRecords,
               static_cast<double>(catfish.nvme_ops) / kRecords);
    shape_ok = shape_ok && kernel.ok && catfish.ok && catfish.syscalls == 0 &&
               catfish.bytes_copied == 0 &&
               catfish.ns_per_append < kernel.ns_per_append;
    if (record_bytes == 128) {
      ratio_small = kernel.ns_per_append / catfish.ns_per_append;
    }
  }

  // Push-down: the same multi-level index lookup driven from the host (one read +
  // one completion per level) vs pushed to the device program engine (one host
  // completion per chain, dependent reads resubmitted device-side).
  std::printf("\n%d lookups in a %zu-key index (fanout %zu):\n\n", kLookups,
              kIndexKeys, kIndexFanout);
  const IndexResult host_path = RunIndexLookups(/*pushdown=*/false);
  const IndexResult push_path = RunIndexLookups(/*pushdown=*/true);
  bench::Row("%-10s | %-8s %-10s %-10s %-10s %-8s\n", "descent", "depth", "us/op",
             "cmpl/op", "dbell/op", "nvme/op");
  bench::Row("---------------------------------------------------------------\n");
  bench::Row("%-10s | %-8u %10.2f %10.2f %10.2f %8.2f\n", "host", host_path.depth,
             host_path.us_per_lookup, host_path.completions_per_op,
             host_path.doorbells_per_op, host_path.nvme_per_op);
  bench::Row("%-10s | %-8u %10.2f %10.2f %10.2f %8.2f\n", "pushdown", push_path.depth,
             push_path.us_per_lookup, push_path.completions_per_op,
             push_path.doorbells_per_op, push_path.nvme_per_op);

  // The host's per-lookup device interaction collapses from O(depth) completions and
  // doorbells to exactly one of each; the media still does `depth` reads per lookup.
  const bool pushdown_ok =
      host_path.ok && push_path.ok && host_path.depth >= 4 &&
      host_path.completions_per_op >= static_cast<double>(host_path.depth) &&
      push_path.completions_per_op == 1.0 && push_path.doorbells_per_op == 1.0 &&
      push_path.nvme_per_op >= static_cast<double>(push_path.depth);
  shape_ok = shape_ok && pushdown_ok;
  std::printf("\npush-down cuts host completions/lookup from %.0f to %.0f at depth %u "
              "(device runs the\ndescent and resubmits dependent reads internally; the "
              "host pays one doorbell and one\ncompletion per chain).\n",
              host_path.completions_per_op, push_path.completions_per_op,
              host_path.depth);

  if (!metrics_json.empty()) {
    char pushdown_json[512];
    std::snprintf(pushdown_json, sizeof(pushdown_json),
                  "{\"depth\": %u, \"lookups\": %d, "
                  "\"host\": {\"us_per_op\": %.2f, \"completions_per_op\": %.2f, "
                  "\"doorbells_per_op\": %.2f, \"nvme_per_op\": %.2f}, "
                  "\"pushdown\": {\"us_per_op\": %.2f, \"completions_per_op\": %.2f, "
                  "\"doorbells_per_op\": %.2f, \"nvme_per_op\": %.2f}}",
                  host_path.depth, kLookups, host_path.us_per_lookup,
                  host_path.completions_per_op, host_path.doorbells_per_op,
                  host_path.nvme_per_op, push_path.us_per_lookup,
                  push_path.completions_per_op, push_path.doorbells_per_op,
                  push_path.nvme_per_op);
    bench::WriteMetricsFile("bench_e3_storage",
                            "{\"catfish\":" + metrics_json +
                                ",\"pushdown\":" + pushdown_json + "}");
  }

  std::printf("\nsmall-record appends: catfish is %.2fx faster — the device write "
              "dominates both, but the kernel\nadds write+fsync syscalls, a page-cache "
              "copy, and VFS overhead per record.\n", ratio_small);
  bench::Verdict(shape_ok, "catfish persists with zero syscalls/copies and lower "
                           "latency at every record size; push-down completes a "
                           "depth-d index lookup in one host completion");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
