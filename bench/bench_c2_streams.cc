// C2 — §3.2's stream claim: "UNIX pipes force applications to operate on streams of
// data; Redis can only process a read operation after the entire request has arrived;
// by the time Redis has inspected a pipe and found that its read operation is
// incomplete, it could have processed a request that was ready."
//
// Scenario: a trickling client fragments each request into N writes with a gap, while
// the POSIX server is woken per fragment and re-scans the partial buffer for nothing.
// The same workload over Demikernel queues never surfaces a partial element.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/kv_runners.h"

namespace demi {
namespace {

int Run() {
  bench::Header("C2", "byte streams vs atomic queue units (Section 3.2)",
                "partial requests waste server work under the POSIX stream "
                "abstraction; atomic queue elements make partial requests impossible");
  CostModel cost;
  bench::PrintCostModel(cost);

  bench::Row("%-10s | %-12s %-14s %-14s | %-12s %-14s | %-10s %-10s\n", "fragments",
             "posix scans", "posix wasted", "posix p50", "demi scans", "demi p50",
             "demi", "demi");
  bench::Row("%-10s | %-12s %-14s %-14s | %-12s %-14s | %-10s %-10s\n", "per req",
             "(partial)", "cpu ns/req", "latency", "(partial)", "latency", "dbell/op",
             "pkts/op");
  bench::Row("-------------------------------------------------------------------------------------------------------------\n");

  bool shape_ok = true;
  std::uint64_t posix_scans_at_8 = 0;
  for (const int fragments : {1, 2, 4, 8}) {
    bench::KvRunOptions opt;
    opt.cost = cost;
    opt.requests_per_client = 400;
    opt.workload.num_keys = 200;
    opt.workload.get_ratio = 0.0;   // SETs with a payload worth fragmenting
    opt.workload.value_bytes = 512;
    opt.client_fragments = fragments;
    opt.fragment_gap_ns = 15 * kMicrosecond;

    opt.kind = "posix";
    auto posix = bench::RunKv(opt);

    // Demikernel comparison: pushes are atomic, so client-side trickling does not
    // exist — the element leaves as one unit regardless.
    opt.kind = "catnip";
    auto demi = bench::RunKv(opt);

    const double wasted_ns =
        static_cast<double>(posix.incomplete_scans * cost.partial_scan_ns +
                            // each wasted wake also paid a read syscall + socket work
                            posix.incomplete_scans *
                                (cost.syscall_ns + cost.kernel_socket_ns)) /
        static_cast<double>(posix.completed);

    // Per-op device cost on the Demikernel server: doorbell coalescing and delayed
    // ACKs shrink both the MMIO count and the raw packet count for the same SETs.
    const double ops = static_cast<double>(demi.completed ? demi.completed : 1);
    const double demi_doorbells =
        static_cast<double>(demi.server_counters.Get(Counter::kDoorbells)) / ops;
    const double demi_packets =
        static_cast<double>(demi.server_counters.Get(Counter::kPacketsTx) +
                            demi.server_counters.Get(Counter::kPacketsRx)) /
        ops;
    bench::Row("%-10d | %12llu %11.0f ns %11llu ns | %12llu %11llu ns | %-10.2f %-10.2f\n",
               fragments, static_cast<unsigned long long>(posix.incomplete_scans),
               wasted_ns, static_cast<unsigned long long>(posix.latency.P50()),
               static_cast<unsigned long long>(
                   demi.server_counters.Get(Counter::kStreamScans)),
               static_cast<unsigned long long>(demi.latency.P50()), demi_doorbells,
               demi_packets);

    shape_ok = shape_ok && posix.ok && demi.ok &&
               demi.server_counters.Get(Counter::kStreamScans) == 0;
    if (fragments == 8) {
      posix_scans_at_8 = posix.incomplete_scans;
    }
  }

  std::printf("\nevery POSIX partial scan is a wakeup + syscall + inspection that "
              "produced nothing;\nthe Demikernel server is woken once per COMPLETE "
              "element (Section 4.2's granularity guarantee).\n");
  bench::Verdict(shape_ok && posix_scans_at_8 > 0,
                 "wasted scans grow with fragmentation on the stream path and are "
                 "identically zero on the queue path");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
