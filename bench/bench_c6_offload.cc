// C6 — §4.3's offload claim: "Library OSes always implement filters directly on
// supported devices but default to using the CPU if necessary. Filters are useful
// beyond reducing CPU load."
//
// A UDP telemetry queue with a filter whose selectivity we sweep: on a plain NIC the
// predicate runs on the host CPU for EVERY packet (kept or dropped); on a SmartNIC the
// program runs on the device and dropped packets never touch the host at all.

#include <cstdio>

#include "bench/bench_util.h"
#include "include/demikernel/demikernel.h"

namespace demi {
namespace {

struct OffloadResult {
  double host_ns_per_pkt = 0;
  double device_ns_per_pkt = 0;
  std::uint64_t pkts_dma_to_host = 0;
  std::uint64_t delivered = 0;
  bool ok = false;
};

constexpr int kPackets = 2000;
constexpr TimeNs kFilterCost = 400;  // host-CPU cost of the predicate per packet

OffloadResult RunFilter(bool offload, double keep_fraction) {
  TestHarness env;
  HostOptions collector_opts;
  collector_opts.nic_offload = offload;
  auto& collector_host = env.AddHost("collector", "10.0.0.1", collector_opts);
  HostOptions sensor_opts;
  sensor_opts.charges_clock = false;
  auto& sensor_host = env.AddHost("sensor", "10.0.0.2", sensor_opts);
  CatnipLibOS& collector = env.Catnip(collector_host);
  CatnipLibOS& sensor = env.Catnip(sensor_host);

  const QDesc rx = *collector.SocketUdp();
  if (!collector.Bind(rx, 9999).ok()) {
    return {};
  }
  // Keep packets whose first byte is below the threshold (deterministic pattern).
  const int threshold = static_cast<int>(keep_fraction * 256.0);
  ElementPredicate pred{
      [threshold](const SgArray& sga) {
        return !sga.empty() &&
               std::to_integer<int>(sga.segment(0).span()[0]) < threshold;
      },
      kFilterCost};
  const QDesc filtered = *collector.Filter(rx, pred);

  const QDesc tx = *sensor.SocketUdp();
  (void)sensor.Connect(tx, Endpoint{collector_host.ip, 9999});

  const std::uint64_t cpu0 = collector_host.cpu->busy_ns();
  const std::uint64_t dev0 = collector_host.cpu->counters().Get(Counter::kDeviceComputeNs);
  const std::uint64_t rx0 = collector_host.cpu->counters().Get(Counter::kPacketsRx);

  OffloadResult out;
  // Open-loop sender paced at 1 packet/us (below the host's service rate, so the RX
  // ring never overflows); deterministic byte pattern so keep_fraction is exact.
  std::uint64_t expected_kept = 0;
  int sent = 0;
  std::function<void()> send_tick = [&] {
    if (sent >= kPackets) {
      return;
    }
    SgArray pkt = sensor.SgaAlloc(64);
    pkt.segment(0).mutable_data()[0] = std::byte{static_cast<std::uint8_t>(sent % 256)};
    if (sent % 256 < threshold) {
      ++expected_kept;
    }
    (void)sensor.Push(tx, pkt);
    ++sent;
    env.sim().Schedule(1 * kMicrosecond, send_tick);
  };
  env.sim().Schedule(0, send_tick);

  QToken pop_token = *collector.Pop(filtered);
  env.RunUntil(
      [&]() -> bool {
        if (collector.OpDone(pop_token)) {
          auto r = collector.TakeResult(pop_token);
          if (r.ok() && r->status.ok()) {
            ++out.delivered;
          }
          pop_token = *collector.Pop(filtered);
        }
        return sent >= kPackets && out.delivered >= expected_kept;
      },
      600 * kSecond);

  // Drain the tail: packets that the CPU filter still has to inspect-and-drop. Keep
  // stepping until the host's work stops changing (a quiescence barrier).
  std::uint64_t prev_busy = 0;
  while (prev_busy != collector_host.cpu->busy_ns()) {
    prev_busy = collector_host.cpu->busy_ns();
    env.sim().RunFor(500 * kMicrosecond);
    if (collector.OpDone(pop_token)) {
      auto r = collector.TakeResult(pop_token);
      if (r.ok() && r->status.ok()) {
        ++out.delivered;
      }
      pop_token = *collector.Pop(filtered);
    }
  }

  out.host_ns_per_pkt =
      static_cast<double>(collector_host.cpu->busy_ns() - cpu0) / kPackets;
  out.device_ns_per_pkt =
      static_cast<double>(collector_host.cpu->counters().Get(Counter::kDeviceComputeNs) -
                          dev0) /
      kPackets;
  out.pkts_dma_to_host = collector_host.cpu->counters().Get(Counter::kPacketsRx) - rx0;
  out.ok = out.delivered >= expected_kept && expected_kept > 0;
  return out;
}

int Run() {
  bench::Header("C6", "filter offload to the device (Section 4.3)",
                "offloaded filters drop packets before they cost host CPU or PCIe "
                "bandwidth; the device pays compute instead (the Section 3.3 trade-off)");
  CostModel cost;
  bench::PrintCostModel(cost);

  std::printf("%d UDP packets, predicate costs %lld ns on the host "
              "(x%.1f on the device):\n\n",
              kPackets, static_cast<long long>(kFilterCost), cost.device_compute_factor);
  bench::Row("%-10s | %-12s %-12s %-10s | %-12s %-12s %-10s\n", "keep", "cpu-filter",
             "cpu-filter", "to-host", "nic-filter", "nic-filter", "to-host");
  bench::Row("%-10s | %-12s %-12s %-10s | %-12s %-12s %-10s\n", "fraction",
             "host ns/pkt", "dev ns/pkt", "pkts", "host ns/pkt", "dev ns/pkt", "pkts");
  bench::Row("------------------------------------------------------------------------------------\n");

  bool shape_ok = true;
  for (const double keep : {0.05, 0.25, 0.5, 0.9}) {
    const OffloadResult cpu = RunFilter(/*offload=*/false, keep);
    const OffloadResult nic = RunFilter(/*offload=*/true, keep);
    bench::Row("%-10.2f | %12.0f %12.0f %10llu | %12.0f %12.0f %10llu\n", keep,
               cpu.host_ns_per_pkt, cpu.device_ns_per_pkt,
               static_cast<unsigned long long>(cpu.pkts_dma_to_host),
               nic.host_ns_per_pkt, nic.device_ns_per_pkt,
               static_cast<unsigned long long>(nic.pkts_dma_to_host));
    shape_ok = shape_ok && cpu.ok && nic.ok &&
               nic.host_ns_per_pkt < cpu.host_ns_per_pkt &&
               nic.pkts_dma_to_host < cpu.pkts_dma_to_host &&
               nic.device_ns_per_pkt > cpu.device_ns_per_pkt;
  }

  std::printf("\nCPU fallback pays the predicate on every packet and DMAs every "
              "packet to host memory;\nthe offloaded filter shifts that work to the "
              "device — biggest win at low keep fractions.\n");
  bench::Verdict(shape_ok, "offloading always reduces host CPU and host-bound PCIe "
                           "traffic, at the price of device compute");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
