#!/usr/bin/env bash
# Data-path bench runner: builds the four data-path benches in Release (-O2), runs
# them, and records both simulated latency (p50/p99 ns) and wall-clock simulator
# throughput (ops/s) into BENCH_datapath.json so the perf trajectory has a baseline.
#
# Usage:
#   bench/run_benches.sh [before|after]
#     Section label to write into BENCH_datapath.json (default: after). Run once on
#     the old tree as `before` and once on the new tree as `after` to get a
#     comparable pair in one file.
#
# Environment:
#   BENCH_BUILD_DIR     build directory (default: <repo>/build-bench)
#   BENCH_OUT           output json (default: <repo>/BENCH_datapath.json)
#   BENCH_RUNS          timing runs per bench; wall_ms is the min (default: 5)
#   BENCH_BASELINE_BUILD_DIR
#                       prebuilt bench binaries of a baseline tree. When set, each
#                       timing round runs baseline and current back to back
#                       (interleaved), and BOTH a "before" (baseline) and an
#                       "after" (current) section are written in one invocation —
#                       sequential whole-tree runs are not comparable when
#                       machine load drifts between them.
#   BENCH_SMOKE=1       smoke mode for ctest: use an existing build's bench
#                       binaries, run them once, and fail on any SHAPE-FAIL
#                       verdict; writes no json.
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BENCH_BUILD_DIR:-$REPO/build-bench}"
OUT="${BENCH_OUT:-$REPO/BENCH_datapath.json}"
LABEL="${1:-after}"
SMOKE="${BENCH_SMOKE:-0}"
BASELINE="${BENCH_BASELINE_BUILD_DIR:-}"

BENCHES=(bench_f1_datapath bench_e1_echo bench_c1_zerocopy bench_c2_streams bench_c3_wakeups bench_e3_storage bench_t2_tenants bench_s1_scaling bench_f2_controlpath)
TENANTS_OUT="${BENCH_TENANTS_OUT:-$REPO/BENCH_tenants.json}"
SMP_OUT="${BENCH_SMP_OUT:-$REPO/BENCH_smp.json}"
STORAGE_OUT="${BENCH_STORAGE_OUT:-$REPO/BENCH_storage.json}"
CONTROLPATH_OUT="${BENCH_CONTROLPATH_OUT:-$REPO/BENCH_controlpath.json}"

if [[ "$SMOKE" != "1" ]]; then
  cmake -S "$REPO" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2 -DNDEBUG" >/dev/null
  cmake --build "$BUILD" -j "$(nproc)" --target "${BENCHES[@]}" >/dev/null
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# Wall time is min-of-N (smoke mode: 1 run): the minimum is the least load-sensitive
# wall-clock estimator, so before/after numbers stay comparable across runs.
RUNS="${BENCH_RUNS:-5}"
if [[ "$SMOKE" == "1" ]]; then RUNS=1; fi

if [[ -n "$BASELINE" ]]; then
  LABELS=(before after)
  DIRS=("$BASELINE" "$BUILD")
else
  LABELS=("$LABEL")
  DIRS=("$BUILD")
fi

declare -A WALL_MS  # keyed "label/bench"
for b in "${BENCHES[@]}"; do
  for li in "${!LABELS[@]}"; do
    exe="${DIRS[$li]}/bench/$b"
    if [[ ! -x "$exe" ]]; then
      echo "missing bench binary: $exe" >&2
      exit 1
    fi
  done
  for (( r = 0; r < RUNS; r++ )); do
    # Inner loop over labels: baseline and current alternate within each round.
    for li in "${!LABELS[@]}"; do
      label="${LABELS[$li]}"
      exe="${DIRS[$li]}/bench/$b"
      # Benches that support it drop a <bench>.metrics.json observability snapshot
      # (per-op latency quantiles, sim internals, recovery trace) in this directory.
      mkdir -p "$TMP/metrics-$label"
      t0=$(date +%s%N)
      BENCH_METRICS_DIR="$TMP/metrics-$label" "$exe" > "$TMP/$label-$b.txt"
      t1=$(date +%s%N)
      ms=$(( (t1 - t0) / 1000000 ))
      key="$label/$b"
      if [[ -z "${WALL_MS[$key]:-}" || "$ms" -lt "${WALL_MS[$key]}" ]]; then
        WALL_MS[$key]=$ms
      fi
    done
  done
  for label in "${LABELS[@]}"; do
    if grep -q 'SHAPE-FAIL' "$TMP/$label-$b.txt"; then
      echo "$b ($label): SHAPE-FAIL" >&2
      sed -n '/SHAPE-FAIL/p' "$TMP/$label-$b.txt" >&2
      exit 1
    fi
    echo "$b ($label): SHAPE-OK (${WALL_MS[$label/$b]} ms wall, best of $RUNS)"
  done
done

if [[ "$SMOKE" == "1" ]]; then
  exit 0
fi

ops_per_sec() {  # ops wall_ms
  local ops=$1 ms=$2
  if (( ms == 0 )); then ms=1; fi
  echo $(( ops * 1000 / ms ))
}

emit_section() {  # label -> json on stdout
  local label=$1

  # f1: 2 systems x 2000 echo requests; "client-observed RTT p50   <posix>   <bypass>"
  local f1_ops=4000 f1_p50_posix f1_p50_bypass
  read -r f1_p50_posix f1_p50_bypass < <(
    awk '/client-observed RTT p50/{print $(NF-1), $NF}' "$TMP/$label-bench_f1_datapath.txt")

  # e1: 4 libOSes x 2000 requests; columns from the end:
  # p50 p99 mean sys copyB dbell pkts
  local e1_ops=8000 e1_catnip_p50 e1_catnip_p99 e1_posix_p50 e1_posix_p99
  local e1_catnip_dbell e1_catnip_pkts
  read -r e1_catnip_p50 e1_catnip_p99 e1_catnip_dbell e1_catnip_pkts < <(
    awk '$1=="catnip"{print $(NF-6), $(NF-5), $(NF-1), $NF}' "$TMP/$label-bench_e1_echo.txt")
  read -r e1_posix_p50 e1_posix_p99 < <(
    awk '$1=="posix"{print $(NF-6), $(NF-5)}' "$TMP/$label-bench_e1_echo.txt")

  # c2: demi server device cost per op at the fragments=1 (bulk SETs) row; the third
  # pipe-separated group is "dbell/op pkts/op".
  local c2_dbell c2_pkts
  read -r c2_dbell c2_pkts < <(
    awk -F'|' '$1 ~ /^1 / {split($4, a, " "); print a[1], a[2]}' \
      "$TMP/$label-bench_c2_streams.txt")

  # c1: 5 value sizes x 2 systems x 1500 requests; catnip copy count at the 4KB row.
  local c1_ops=15000 c1_copies_4k
  c1_copies_4k=$(awk -F'|' '$1 ~ /^4096/{n=split($3, a, " "); print a[n]}' \
    "$TMP/$label-bench_c1_zerocopy.txt")

  # c3: herd table; wait_any wakeups at 16 waiters (third pipe-separated column).
  local c3_wakeups
  c3_wakeups=$(awk -F'|' '$1 ~ /^16 /{split($3, a, " "); print a[1]}' \
    "$TMP/$label-bench_c3_wakeups.txt")

  # e3: catfish vs kernel log appends at the 4096-byte row (us/op columns).
  local e3_kernel_us e3_catfish_us
  read -r e3_kernel_us e3_catfish_us < <(
    awk -F'|' '$1 ~ /^4096/{split($2, k, " "); split($3, c, " "); print k[1], c[1]}' \
      "$TMP/$label-bench_e3_storage.txt")

  # e3 push-down rows: "host|pushdown | depth us/op cmpl/op dbell/op nvme/op".
  local e3_host_cmpl e3_push_cmpl
  e3_host_cmpl=$(awk -F'|' '$1 ~ /^host /{split($2, a, " "); print a[3]}' \
    "$TMP/$label-bench_e3_storage.txt")
  e3_push_cmpl=$(awk -F'|' '$1 ~ /^pushdown /{split($2, a, " "); print a[3]}' \
    "$TMP/$label-bench_e3_storage.txt")

  # Observability snapshots (per-op latency p50/p99, sim internals, recovery trace)
  # emitted by the benches themselves; {} when a bench wrote none.
  local m_e1 m_e3
  m_e1=$(cat "$TMP/metrics-$label/bench_e1_echo.metrics.json" 2>/dev/null || echo '{}')
  m_e3=$(cat "$TMP/metrics-$label/bench_e3_storage.metrics.json" 2>/dev/null || echo '{}')

  cat <<EOF
{
  "f1_datapath": {
    "wall_ms": ${WALL_MS[$label/bench_f1_datapath]},
    "ops": $f1_ops,
    "ops_per_sec": $(ops_per_sec "$f1_ops" "${WALL_MS[$label/bench_f1_datapath]}"),
    "rtt_p50_ns": {"posix": $f1_p50_posix, "kernel_bypass": $f1_p50_bypass},
    "verdict": "SHAPE-OK"
  },
  "e1_echo": {
    "wall_ms": ${WALL_MS[$label/bench_e1_echo]},
    "ops": $e1_ops,
    "ops_per_sec": $(ops_per_sec "$e1_ops" "${WALL_MS[$label/bench_e1_echo]}"),
    "catnip": {"p50_ns": $e1_catnip_p50, "p99_ns": $e1_catnip_p99,
               "doorbells_per_op": $e1_catnip_dbell, "packets_per_op": $e1_catnip_pkts},
    "posix": {"p50_ns": $e1_posix_p50, "p99_ns": $e1_posix_p99},
    "verdict": "SHAPE-OK"
  },
  "c2_streams": {
    "wall_ms": ${WALL_MS[$label/bench_c2_streams]},
    "catnip_bulk": {"doorbells_per_op": $c2_dbell, "packets_per_op": $c2_pkts},
    "verdict": "SHAPE-OK"
  },
  "c1_zerocopy": {
    "wall_ms": ${WALL_MS[$label/bench_c1_zerocopy]},
    "ops": $c1_ops,
    "ops_per_sec": $(ops_per_sec "$c1_ops" "${WALL_MS[$label/bench_c1_zerocopy]}"),
    "catnip_copies_at_4k": $c1_copies_4k,
    "verdict": "SHAPE-OK"
  },
  "c3_wakeups": {
    "wall_ms": ${WALL_MS[$label/bench_c3_wakeups]},
    "wait_any_wakeups_at_16_waiters": $c3_wakeups,
    "verdict": "SHAPE-OK"
  },
  "e3_storage": {
    "wall_ms": ${WALL_MS[$label/bench_e3_storage]},
    "us_per_append_4k": {"kernel": $e3_kernel_us, "catfish": $e3_catfish_us},
    "pushdown_completions_per_lookup": {"host": ${e3_host_cmpl:-0},
                                        "pushdown": ${e3_push_cmpl:-0}},
    "verdict": "SHAPE-OK"
  },
  "metrics": {
    "e1_echo": $m_e1,
    "e3_storage": $m_e3
  }
}
EOF
}

declare -A SECTIONS
for label in "${LABELS[@]}"; do
  SECTIONS[$label]="$(emit_section "$label")"
done

if command -v jq >/dev/null && [[ -f "$OUT" ]]; then
  for label in "${LABELS[@]}"; do
    jq --argjson section "${SECTIONS[$label]}" ". + {\"$label\": \$section}" "$OUT" > "$OUT.tmp"
    mv "$OUT.tmp" "$OUT"
  done
else
  {
    printf '{'
    sep=''
    for label in "${LABELS[@]}"; do
      printf '%s\n  "%s": %s' "$sep" "$label" "${SECTIONS[$label]}"
      sep=','
    done
    printf '\n}\n'
  } > "$OUT"
fi
echo "wrote section(s) ${LABELS[*]} to $OUT"

# Tenant fairness: per-label section is wall time plus the bench's own metrics
# snapshot (per-tenant DWRR shares, on/off arms). Merged into BENCH_tenants.json
# the same way as BENCH_datapath.json so before/after pairs diff in one file.
emit_tenant_section() {  # label -> json on stdout
  local label=$1 m
  m=$(cat "$TMP/metrics-$label/bench_t2_tenants.metrics.json" 2>/dev/null || echo '{}')
  printf '{"wall_ms": %s, "metrics": %s}' "${WALL_MS[$label/bench_t2_tenants]}" "$m"
}

if command -v jq >/dev/null && [[ -f "$TENANTS_OUT" ]]; then
  for label in "${LABELS[@]}"; do
    jq --argjson section "$(emit_tenant_section "$label")" \
      ". + {\"$label\": \$section}" "$TENANTS_OUT" > "$TENANTS_OUT.tmp"
    mv "$TENANTS_OUT.tmp" "$TENANTS_OUT"
  done
else
  {
    printf '{'
    sep=''
    for label in "${LABELS[@]}"; do
      printf '%s\n  "%s": %s' "$sep" "$label" "$(emit_tenant_section "$label")"
      sep=','
    done
    printf '\n}\n'
  } > "$TENANTS_OUT"
fi
echo "wrote tenant section(s) ${LABELS[*]} to $TENANTS_OUT"

# Multi-core scale-out: wall time plus the bench's own metrics snapshot (1->N
# worker scaling curves for echo/KV, skewed-tail steal on/off arms, determinism
# flag). Merged into BENCH_smp.json so before/after pairs diff in one file.
emit_smp_section() {  # label -> json on stdout
  local label=$1 m
  m=$(cat "$TMP/metrics-$label/bench_s1_scaling.metrics.json" 2>/dev/null || echo '{}')
  printf '{"wall_ms": %s, "metrics": %s}' "${WALL_MS[$label/bench_s1_scaling]}" "$m"
}

if command -v jq >/dev/null && [[ -f "$SMP_OUT" ]]; then
  for label in "${LABELS[@]}"; do
    jq --argjson section "$(emit_smp_section "$label")" \
      ". + {\"$label\": \$section}" "$SMP_OUT" > "$SMP_OUT.tmp"
    mv "$SMP_OUT.tmp" "$SMP_OUT"
  done
else
  {
    printf '{'
    sep=''
    for label in "${LABELS[@]}"; do
      printf '%s\n  "%s": %s' "$sep" "$label" "$(emit_smp_section "$label")"
      sep=','
    done
    printf '\n}\n'
  } > "$SMP_OUT"
fi
echo "wrote smp section(s) ${LABELS[*]} to $SMP_OUT"

# Storage push-down: wall time plus the e3 bench's metrics snapshot (catfish append
# latency quantiles + the host-vs-pushdown index lookup summary: us/op,
# completions/op, doorbells/op, nvme/op at the measured depth). Merged into
# BENCH_storage.json so before/after pairs diff in one file.
emit_storage_section() {  # label -> json on stdout
  local label=$1 m
  m=$(cat "$TMP/metrics-$label/bench_e3_storage.metrics.json" 2>/dev/null || echo '{}')
  printf '{"wall_ms": %s, "metrics": %s}' "${WALL_MS[$label/bench_e3_storage]}" "$m"
}

if command -v jq >/dev/null && [[ -f "$STORAGE_OUT" ]]; then
  for label in "${LABELS[@]}"; do
    jq --argjson section "$(emit_storage_section "$label")" \
      ". + {\"$label\": \$section}" "$STORAGE_OUT" > "$STORAGE_OUT.tmp"
    mv "$STORAGE_OUT.tmp" "$STORAGE_OUT"
  done
else
  {
    printf '{'
    sep=''
    for label in "${LABELS[@]}"; do
      printf '%s\n  "%s": %s' "$sep" "$label" "$(emit_storage_section "$label")"
      sep=','
    done
    printf '\n}\n'
  } > "$STORAGE_OUT"
fi
echo "wrote storage section(s) ${LABELS[*]} to $STORAGE_OUT"

# Control path: wall time plus the f2 bench's metrics snapshot (fastcall-vs-syscall
# control-op pricing, one-crossing AcceptBatch drains, and the adaptive scenario's
# policy-off vs policy-on arms with tenant slot accounting). Merged into
# BENCH_controlpath.json so before/after pairs diff in one file.
emit_controlpath_section() {  # label -> json on stdout
  local label=$1 m
  m=$(cat "$TMP/metrics-$label/bench_f2_controlpath.metrics.json" 2>/dev/null || echo '{}')
  printf '{"wall_ms": %s, "metrics": %s}' "${WALL_MS[$label/bench_f2_controlpath]}" "$m"
}

if command -v jq >/dev/null && [[ -f "$CONTROLPATH_OUT" ]]; then
  for label in "${LABELS[@]}"; do
    jq --argjson section "$(emit_controlpath_section "$label")" \
      ". + {\"$label\": \$section}" "$CONTROLPATH_OUT" > "$CONTROLPATH_OUT.tmp"
    mv "$CONTROLPATH_OUT.tmp" "$CONTROLPATH_OUT"
  done
else
  {
    printf '{'
    sep=''
    for label in "${LABELS[@]}"; do
      printf '%s\n  "%s": %s' "$sep" "$label" "$(emit_controlpath_section "$label")"
      sep=','
    done
    printf '\n}\n'
  } > "$CONTROLPATH_OUT"
fi
echo "wrote controlpath section(s) ${LABELS[*]} to $CONTROLPATH_OUT"
