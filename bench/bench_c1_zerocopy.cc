// C1 — §3.2's copy claim: "copying a 4KB page takes 1µs on a 4GHz CPU, adding 50%
// overhead to Redis" (which spends ~2µs of CPU per request).
//
// GET-heavy KV over the POSIX path (kernel copies on both read and write) vs Catnip
// (zero copy), sweeping the value size. We report server CPU per request and the copy
// share, and check the 4KB row against the paper's arithmetic.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/kv_runners.h"

namespace demi {
namespace {

int Run() {
  bench::Header("C1", "copy overhead vs value size (Section 3.2)",
                "a 4KB copy costs ~1us at 4GHz; on a ~2us Redis request the POSIX "
                "copies add ~50% overhead, growing with value size");
  CostModel cost;
  bench::PrintCostModel(cost);

  bench::Row("%-8s | %-10s %-12s %-12s | %-10s %-12s %-10s | %-9s\n", "value", "posix",
             "posix", "copy", "catnip", "catnip", "catnip", "copy-tax");
  bench::Row("%-8s | %-10s %-12s %-12s | %-10s %-12s %-10s | %-9s\n", "bytes",
             "cpu/req", "p50 rtt", "ns/req", "cpu/req", "p50 rtt", "copies", "vs app");
  bench::Row("--------------------------------------------------------------------------------------------\n");

  bool shape_ok = true;
  double copy_tax_4k = 0;
  for (const std::size_t value_bytes : {64u, 512u, 1024u, 4096u, 16384u}) {
    bench::KvRunOptions opt;
    opt.cost = cost;
    opt.requests_per_client = 1500;
    opt.workload.num_keys = 500;
    opt.workload.get_ratio = 1.0;  // pure GET: reply carries the value
    opt.workload.value_bytes = value_bytes;

    opt.kind = "posix";
    auto posix = bench::RunKv(opt);
    opt.kind = "catnip";
    auto catnip = bench::RunKv(opt);

    const double n = static_cast<double>(posix.completed);
    const double posix_cpu = static_cast<double>(posix.server_cpu_ns) / n;
    const double copy_ns =
        static_cast<double>(posix.server_counters.Get(Counter::kBytesCopied)) *
        cost.copy_ns_per_byte / n;
    const double catnip_cpu =
        static_cast<double>(catnip.server_cpu_ns) / static_cast<double>(catnip.completed);
    const double copy_tax = copy_ns / static_cast<double>(cost.kv_request_cpu_ns);

    bench::Row("%-8zu | %7.0f ns %9llu ns %9.0f ns | %7.0f ns %9llu ns %10llu | %8.0f%%\n",
               value_bytes, posix_cpu,
               static_cast<unsigned long long>(posix.latency.P50()), copy_ns, catnip_cpu,
               static_cast<unsigned long long>(catnip.latency.P50()),
               static_cast<unsigned long long>(
                   catnip.server_counters.Get(Counter::kBytesCopied)),
               copy_tax * 100.0);

    shape_ok = shape_ok && posix.ok && catnip.ok &&
               catnip.server_counters.Get(Counter::kBytesCopied) == 0 &&
               posix_cpu > catnip_cpu;
    if (value_bytes == 4096) {
      copy_tax_4k = copy_tax;
    }
  }

  std::printf("\npaper arithmetic at 4KB: copy ~1000ns on a %lld ns request = ~50%%; "
              "measured copy tax: %.0f%%\n",
              static_cast<long long>(cost.kv_request_cpu_ns), copy_tax_4k * 100.0);
  std::printf("(POSIX pays the copy twice per GET — request in, 4KB reply out — so "
              "the end-to-end overhead exceeds the single-copy figure.)\n");

  // The per-GET reply copy alone should be ~45-60% of the app's 2us.
  shape_ok = shape_ok && copy_tax_4k > 0.45;
  bench::Verdict(shape_ok, "catnip copies zero bytes at every size; POSIX copy cost "
                           "grows linearly and reaches ~50%+ of app time at 4KB");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
