// C4 — §4.5's memory-management claims: RDMA devices demand registered memory;
// registering per-operation is ruinously expensive; pre-registering application pools
// burns pinned memory and still requires app-level bookkeeping; the Demikernel's
// transparent registration (register whole arenas once, allocate everything from
// them) gets zero per-op cost without any application registration calls.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/harness.h"

namespace demi {
namespace {

struct RegResult {
  double ns_per_op = 0;
  std::uint64_t registrations = 0;
  std::uint64_t pinned_bytes = 0;
  std::uint64_t app_reg_calls = 0;  // registration calls written by the APPLICATION
};

constexpr std::size_t kMsgBytes = 4096;
constexpr int kOps = 400;

// Connected QP pair with a sink that swallows receive completions forever.
struct RdmaPair {
  explicit RdmaPair(TestHarness& env)
      : server_host(env.AddHost("server", "10.0.0.1", Opts())),
        client_host(env.AddHost("client", "10.0.0.2", Opts())) {
    (void)server_host.rdma->Listen("sink");
    client_qp = client_host.rdma->Connect("sink");
    env.RunUntil([&] { return client_qp->connected(); }, kSecond);
    server_qp = server_host.rdma->Accept("sink");
    // Keep the server fed with registered receive buffers.
    for (int i = 0; i < 256; ++i) {
      Buffer b = Buffer::Allocate(kMsgBytes);
      (void)server_host.rdma->RegisterMemory(b.shared_storage());
      (void)server_qp->PostRecv(static_cast<std::uint64_t>(i) | (1ULL << 62), b);
    }
  }
  static HostOptions Opts() {
    HostOptions o;
    o.with_rdma = true;
    o.with_nic = false;
    o.with_kernel = false;
    return o;
  }
  TestHarness::Host& server_host;
  TestHarness::Host& client_host;
  std::shared_ptr<RdmaQp> client_qp;
  std::shared_ptr<RdmaQp> server_qp;
};

// Sends one message and waits for its completion (also draining server recvs).
void SendOne(TestHarness& env, RdmaPair& pair, std::uint64_t id, Buffer buf) {
  (void)pair.client_qp->PostSend(id, {std::move(buf)});
  env.RunUntil(
      [&] {
        (void)pair.server_qp->PollCq(8);
        for (const auto& wc : pair.client_qp->PollCq(8)) {
          if (wc.wr_id == id) {
            return true;
          }
        }
        return false;
      },
      10 * kSecond);
  // Re-post a recv to keep the pool steady.
  Buffer b = Buffer::Allocate(kMsgBytes);
  (void)pair.server_host.rdma->RegisterMemory(b.shared_storage());
  (void)pair.server_qp->PostRecv(id | (1ULL << 61), b);
}

// (a) Per-op registration: register, send, deregister — every single message.
RegResult RunPerOp() {
  TestHarness env;
  RdmaPair pair(env);
  RdmaNic& nic = *pair.client_host.rdma;
  const TimeNs start = env.sim().now();
  std::uint64_t app_calls = 0;
  for (int i = 0; i < kOps; ++i) {
    Buffer buf = Buffer::Allocate(kMsgBytes);
    auto rkey = nic.RegisterMemory(buf.shared_storage());
    ++app_calls;
    SendOne(env, pair, static_cast<std::uint64_t>(i + 1), buf);
    (void)nic.DeregisterMemory(*rkey);
  }
  RegResult out;
  out.ns_per_op = static_cast<double>(env.sim().now() - start) / kOps;
  out.registrations = pair.client_host.cpu->counters().Get(Counter::kMemRegistrations);
  out.pinned_bytes = nic.pinned_bytes();
  out.app_reg_calls = app_calls;
  return out;
}

// (b) Explicit pre-registered pool: the application registers a big pool up front and
// hand-manages recycling (the "enormous engineering effort" path of Section 1).
RegResult RunExplicitPool() {
  TestHarness env;
  RdmaPair pair(env);
  RdmaNic& nic = *pair.client_host.rdma;
  const TimeNs start = env.sim().now();
  std::uint64_t app_calls = 0;

  constexpr int kPool = 32;
  std::vector<Buffer> pool;
  for (int i = 0; i < kPool; ++i) {
    Buffer b = Buffer::Allocate(kMsgBytes);
    (void)nic.RegisterMemory(b.shared_storage());
    ++app_calls;
    pool.push_back(std::move(b));
  }
  for (int i = 0; i < kOps; ++i) {
    SendOne(env, pair, static_cast<std::uint64_t>(i + 1), pool[i % kPool]);
  }
  RegResult out;
  out.ns_per_op = static_cast<double>(env.sim().now() - start) / kOps;
  out.registrations = pair.client_host.cpu->counters().Get(Counter::kMemRegistrations);
  out.pinned_bytes = nic.pinned_bytes();
  out.app_reg_calls = app_calls;
  return out;
}

// (c) Demikernel transparent registration: the memory manager registers arenas; the
// application allocates and sends — zero registration calls in app code.
RegResult RunTransparent() {
  TestHarness env;
  RdmaPair pair(env);
  RdmaNic& nic = *pair.client_host.rdma;

  MemoryManager manager(pair.client_host.cpu.get());
  manager.AttachDevice([&nic](std::shared_ptr<BufferStorage> arena) {
    (void)nic.RegisterMemory(std::move(arena));
  });

  const TimeNs start = env.sim().now();
  for (int i = 0; i < kOps; ++i) {
    Buffer buf = manager.Allocate(kMsgBytes);  // registered by construction
    SendOne(env, pair, static_cast<std::uint64_t>(i + 1), buf);
  }
  RegResult out;
  out.ns_per_op = static_cast<double>(env.sim().now() - start) / kOps;
  out.registrations = pair.client_host.cpu->counters().Get(Counter::kMemRegistrations);
  out.pinned_bytes = nic.pinned_bytes();
  out.app_reg_calls = 0;
  return out;
}

int Run() {
  bench::Header("C4", "memory registration strategies (Section 4.5)",
                "transparent arena registration removes the per-op registration cost "
                "AND the application-side registration code, trading some pinned "
                "memory for it");
  CostModel cost;
  bench::PrintCostModel(cost);

  const RegResult per_op = RunPerOp();
  const RegResult pool = RunExplicitPool();
  const RegResult transparent = RunTransparent();

  std::printf("%d x %zuB sends over RDMA, client-side registration strategy:\n\n",
              kOps, kMsgBytes);
  bench::Row("%-30s %12s %8s %12s %10s\n", "strategy", "ns/op", "regs",
             "pinned B", "app calls");
  bench::Row("-------------------------------------------------------------------------------\n");
  bench::Row("%-30s %12.0f %8llu %12llu %10llu\n", "register per operation",
             per_op.ns_per_op, static_cast<unsigned long long>(per_op.registrations),
             static_cast<unsigned long long>(per_op.pinned_bytes),
             static_cast<unsigned long long>(per_op.app_reg_calls));
  bench::Row("%-30s %12.0f %8llu %12llu %10llu\n", "explicit app-managed pool",
             pool.ns_per_op, static_cast<unsigned long long>(pool.registrations),
             static_cast<unsigned long long>(pool.pinned_bytes),
             static_cast<unsigned long long>(pool.app_reg_calls));
  bench::Row("%-30s %12.0f %8llu %12llu %10llu\n", "demikernel transparent",
             transparent.ns_per_op,
             static_cast<unsigned long long>(transparent.registrations),
             static_cast<unsigned long long>(transparent.pinned_bytes),
             static_cast<unsigned long long>(transparent.app_reg_calls));

  std::printf("\nper-op registration pays ibv_reg_mr (%lld ns + %lld ns/page) on the "
              "critical path of every send;\ntransparent registration amortizes one "
              "arena registration over thousands of allocations\nand needs ZERO "
              "registration logic in the application (the paper's simplification claim).\n",
              static_cast<long long>(cost.mem_reg_base_ns),
              static_cast<long long>(cost.mem_reg_per_page_ns));

  const bool shape_ok = per_op.ns_per_op > 1.2 * transparent.ns_per_op &&
                        transparent.app_reg_calls == 0 &&
                        transparent.registrations <= 4 &&
                        pool.ns_per_op <= per_op.ns_per_op;
  bench::Verdict(shape_ok, "transparent registration matches the hand-built pool's "
                           "speed with no app code, and beats per-op registration");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
