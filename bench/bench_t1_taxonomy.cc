// T1 — Table 1: the kernel-bypass accelerator taxonomy, generated from the simulated
// devices' capability descriptors and cross-checked against their actual behaviour.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/harness.h"

namespace demi {
namespace {

const char* Mark(bool b) { return b ? "yes" : "-"; }

void PrintCaps(const DeviceCaps& caps) {
  bench::Row("%-28s %-20s %-7s %-6s %-6s %-10s %-8s %-8s\n", caps.device.c_str(),
             caps.category.c_str(), Mark(caps.kernel_bypass), Mark(caps.multiplexing),
             Mark(caps.addr_translation), Mark(caps.transport_offload),
             Mark(caps.needs_explicit_mem_reg), Mark(caps.program_offload));
}

int Run() {
  bench::Header("T1", "kernel-bypass accelerator taxonomy (Table 1)",
                "devices divide into kernel-bypass-only / +OS features / +other "
                "features; whatever a device lacks, the libOS must provide (Section 2)");

  Simulation sim;
  Fabric fabric(&sim);
  RdmaCm cm(&sim);
  HostCpu host(&sim, "probe");

  SimNic dpdk(&host, &fabric, MacAddress::ForHost(1));
  NicConfig smart_cfg;
  smart_cfg.supports_offload = true;
  SimNic smart(&host, &fabric, MacAddress::ForHost(2), smart_cfg);
  RdmaNic rdma(&host, &cm);
  BlockDevice nvme(&host);

  bench::Row("%-28s %-20s %-7s %-6s %-6s %-10s %-8s %-8s\n", "device", "category",
             "bypass", "mux", "iommu", "transport", "mem-reg", "offload");
  bench::Row("%.*s\n", 100,
             "----------------------------------------------------------------------"
             "------------------------------");
  PrintCaps(dpdk.caps());
  PrintCaps(nvme.caps());
  PrintCaps(rdma.caps());
  PrintCaps(smart.caps());

  std::printf("\nbehavioural cross-checks:\n");

  // DPDK-class NIC refuses offloaded programs (left column has no extra features).
  NicProgram prog;
  prog.kind = NicProgram::Kind::kFilter;
  prog.filter = [](const Buffer&) { return true; };
  const bool dpdk_no_offload =
      dpdk.InstallRxProgram(0, prog).code() == ErrorCode::kUnsupported;
  std::printf("  plain NIC rejects device programs:          %s\n",
              dpdk_no_offload ? "yes" : "NO");

  // SmartNIC accepts them (right column).
  NicProgram prog2;
  prog2.kind = NicProgram::Kind::kFilter;
  prog2.filter = [](const Buffer&) { return true; };
  const bool smart_offload = smart.InstallRxProgram(0, std::move(prog2)).ok();
  std::printf("  SmartNIC accepts device programs:           %s\n",
              smart_offload ? "yes" : "NO");

  // RDMA requires registered memory (middle column's famous constraint, Section 2).
  RdmaNic peer(&host, &cm);
  (void)peer.Listen("x");
  auto qp = rdma.Connect("x");
  sim.RunUntil([&] { return qp->connected(); }, kSecond);
  Buffer unregistered = Buffer::CopyOf("no mr");
  const bool rdma_needs_reg =
      qp->PostSend(1, {unregistered}).code() == ErrorCode::kPermissionDenied;
  std::printf("  RDMA send without registration fails:       %s\n",
              rdma_needs_reg ? "yes" : "NO");

  // And with registration it works.
  Buffer registered = Buffer::Allocate(16);
  (void)rdma.RegisterMemory(registered.shared_storage());
  const bool rdma_with_reg = qp->PostSend(2, {registered}).ok();
  std::printf("  RDMA send with registration succeeds:       %s\n",
              rdma_with_reg ? "yes" : "NO");

  bench::Verdict(dpdk_no_offload && smart_offload && rdma_needs_reg && rdma_with_reg,
                 "capability matrix matches Table 1's three categories and the "
                 "registration constraint of Section 2");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
