// M1 — google-benchmark microbenchmarks of the hot substrate paths (wall-clock
// nanoseconds of this implementation, not simulated time): descriptor rings, buffer
// slicing, pooled allocation, framing, RESP parsing, checksums, and the discrete-event
// core. These guard against accidental slowdowns in the simulator itself.

#include <benchmark/benchmark.h>

#include "src/apps/resp.h"
#include "src/common/buffer.h"
#include "src/common/checksum.h"
#include "src/common/histogram.h"
#include "src/common/random.h"
#include "src/common/ring_buffer.h"
#include "src/memory/memory_manager.h"
#include "src/net/framing.h"
#include "src/net/packet.h"
#include "src/sim/simulation.h"

namespace demi {
namespace {

void BM_RingPushPop(benchmark::State& state) {
  RingBuffer<int> ring(256);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.Push(i++));
    benchmark::DoNotOptimize(ring.Pop());
  }
}
BENCHMARK(BM_RingPushPop);

void BM_BufferSlice(benchmark::State& state) {
  Buffer buf = Buffer::Allocate(4096);
  for (auto _ : state) {
    Buffer s = buf.Slice(128, 1024);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_BufferSlice);

void BM_PooledAlloc(benchmark::State& state) {
  Simulation sim;
  HostCpu host(&sim, "m");
  MemoryManager manager(&host);
  const auto size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Buffer b = manager.Allocate(size);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_PooledAlloc)->Arg(64)->Arg(4096)->Arg(65536);

void BM_FrameEncodeDecode(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  SgArray sga = SgArray::FromString(std::string(size, 'x'));
  for (auto _ : state) {
    FrameDecoder decoder;
    for (Buffer& part : EncodeFrame(sga)) {
      decoder.Feed(std::move(part));
    }
    auto r = decoder.Next();
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_FrameEncodeDecode)->Arg(64)->Arg(1460)->Arg(16384);

void BM_RespParse(benchmark::State& state) {
  const std::string wire = EncodeRespCommand({"SET", "key0000000001", std::string(64, 'v')});
  Buffer buf = Buffer::CopyOf(wire);
  for (auto _ : state) {
    auto args = ParseRespCommandBuffers(buf);
    benchmark::DoNotOptimize(args);
  }
}
BENCHMARK(BM_RespParse);

void BM_InternetChecksum(benchmark::State& state) {
  Buffer buf = Buffer::Allocate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(InternetChecksum(buf.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1460);

void BM_Crc32c(benchmark::State& state) {
  Buffer buf = Buffer::Allocate(4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(buf.span()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Crc32c);

void BM_TcpHeaderWrite(benchmark::State& state) {
  Buffer seg = Buffer::Allocate(kTcpHeaderSize + 64);
  const Ipv4Address src = Ipv4Address::Parse("10.0.0.1");
  const Ipv4Address dst = Ipv4Address::Parse("10.0.0.2");
  TcpHeader h{1234, 80, 1, 1, kTcpAck, 65535};
  for (auto _ : state) {
    WriteTcpHeader(seg.mutable_span(), h, src, dst, seg.span().subspan(kTcpHeaderSize));
    ++h.seq;
  }
}
BENCHMARK(BM_TcpHeaderWrite);

void BM_SimScheduleRun(benchmark::State& state) {
  Simulation sim;
  for (auto _ : state) {
    sim.Schedule(10, [] {});
    sim.StepOnce();
  }
}
BENCHMARK(BM_SimScheduleRun);

void BM_ZipfNext(benchmark::State& state) {
  Rng rng(1);
  ZipfGenerator zipf(1000000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
}
BENCHMARK(BM_ZipfNext);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram hist;
  std::uint64_t v = 1;
  for (auto _ : state) {
    hist.Record(v);
    v = v * 1664525 + 1013904223;
    v &= 0xFFFFFF;
  }
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace demi

BENCHMARK_MAIN();
