// C5 — §6's stack comparison: "We explored mTCP but found it to be too expensive; for
// example, its latency was higher than the Linux kernel's." Catnip, by dropping the
// POSIX abstraction rather than just the kernel, beats both.
//
// Echo RTT at several message sizes: legacy kernel vs mTCP-style user stack (POSIX
// API preserved: copies + batching) vs Catnip (Demikernel queues, zero copy).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/echo_runners.h"

namespace demi {
namespace {

int Run() {
  bench::Header("C5", "kernel vs mTCP-style vs Catnip echo RTT (Section 6)",
                "keeping the POSIX API on a user-level stack (mTCP) yields WORSE "
                "latency than the kernel; the new abstraction is what wins");
  CostModel cost;
  bench::PrintCostModel(cost);

  constexpr std::uint64_t kRequests = 1500;
  bench::Row("%-8s | %-12s %-12s | %-12s %-12s | %-12s %-12s\n", "msg", "kernel",
             "kernel", "mtcp", "mtcp", "catnip", "catnip");
  bench::Row("%-8s | %-12s %-12s | %-12s %-12s | %-12s %-12s\n", "bytes", "p50 ns",
             "p99 ns", "p50 ns", "p99 ns", "p50 ns", "p99 ns");
  bench::Row("------------------------------------------------------------------------------------\n");

  bool shape_ok = true;
  double ratio_mtcp_kernel = 0;
  double ratio_kernel_catnip = 0;
  for (const std::size_t msg : {64u, 512u, 1024u, 1408u}) {
    auto kernel = bench::RunEcho("posix", msg, kRequests, cost);
    auto mtcp = bench::RunEcho("mtcp", msg, kRequests, cost);
    auto catnip = bench::RunEcho("catnip", msg, kRequests, cost);
    bench::Row("%-8zu | %12llu %12llu | %12llu %12llu | %12llu %12llu\n", msg,
               static_cast<unsigned long long>(kernel.latency.P50()),
               static_cast<unsigned long long>(kernel.latency.P99()),
               static_cast<unsigned long long>(mtcp.latency.P50()),
               static_cast<unsigned long long>(mtcp.latency.P99()),
               static_cast<unsigned long long>(catnip.latency.P50()),
               static_cast<unsigned long long>(catnip.latency.P99()));
    shape_ok = shape_ok && kernel.ok && mtcp.ok && catnip.ok &&
               mtcp.latency.P50() > kernel.latency.P50() &&
               catnip.latency.P50() < kernel.latency.P50();
    if (msg == 64) {
      ratio_mtcp_kernel = static_cast<double>(mtcp.latency.P50()) /
                          static_cast<double>(kernel.latency.P50());
      ratio_kernel_catnip = static_cast<double>(kernel.latency.P50()) /
                            static_cast<double>(catnip.latency.P50());
    }
  }

  std::printf("\nat 64B: mTCP RTT = %.2fx the kernel's (its batching delay dominates "
              "unloaded latency);\n        kernel RTT = %.2fx Catnip's.\n",
              ratio_mtcp_kernel, ratio_kernel_catnip);
  std::printf("mTCP removed the syscalls but kept the abstraction; Catnip removed the "
              "abstraction too.\n");
  bench::Verdict(shape_ok,
                 "mtcp > kernel > catnip in RTT at every size (the paper's ordering)");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
