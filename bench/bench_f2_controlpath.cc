// F2 — Figure 2: the Demikernel split — the legacy kernel keeps the control path
// (device allocation, connection setup), the libOS owns the data path.
//
// Three measurements, coarse to fine:
//   1. The one-time control-path cost of bringing up a Catnip application
//      (device-queue lease, IOMMU mapping, connect handshake) against the
//      steady-state per-I/O cost: kernel syscalls appear ONLY during setup.
//   2. What the control path itself costs once it matters (§3.1: connection churn
//      makes setup a steady-state expense): the same control ops priced as full
//      syscall crossings vs fastcall-style dedicated entries, and an accept storm
//      drained one crossing per connection vs one AcceptBatch crossing total.
//   3. The churn-heavy adaptive echo scenario (DESIGN.md §15) with the path policy
//      off vs on: cold flows demote to the kernel path and visibly return bypass
//      flow slots to the tenant pool while hot flows keep bypass latency.
//
// Environment:
//   BENCH_SMOKE=1      shorter arms (ctest smoke).
//   BENCH_METRICS_DIR  where to drop bench_f2_controlpath.metrics.json (the
//                      run_benches.sh harness assembles BENCH_controlpath.json
//                      from it).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/actors.h"
#include "src/common/logging.h"
#include "src/core/harness.h"
#include "src/load/adaptive_harness.h"

namespace demi {
namespace {

// --- part 2: control-op pricing, full crossing vs fastcall -----------------------

struct ControlArm {
  double connect_cpu_per_op = 0;  // client kernel CPU ns per Connect control op
  double drain_cpu = 0;           // server kernel CPU ns to drain the whole backlog
  std::uint64_t drain_syscalls = 0;
  std::uint64_t drain_fastcalls = 0;
  std::uint64_t accepted = 0;
};

// One arm: `conns` clients connect, then the server drains the accept backlog —
// one Accept crossing per connection, or one AcceptBatch crossing total.
ControlArm RunControlArm(bool fastcall, bool batch, int conns) {
  TestHarness env;
  auto& server = env.AddHost("server", "10.0.0.1");
  auto& client = env.AddHost("client", "10.0.0.2");
  if (fastcall) {
    server.kernel->SetFastcallEnabled(true);
    client.kernel->SetFastcallEnabled(true);
  }
  SimKernel& sk = *server.kernel;
  const int lfd = *sk.Socket();
  DEMI_CHECK(sk.Bind(lfd, 7).ok());
  DEMI_CHECK(sk.Listen(lfd).ok());

  std::vector<int> cfds;
  cfds.reserve(conns);
  for (int i = 0; i < conns; ++i) {
    cfds.push_back(*client.kernel->Socket());
  }
  const std::uint64_t connect_cpu0 = client.cpu->busy_ns();
  for (const int fd : cfds) {
    DEMI_CHECK(client.kernel->Connect(fd, Endpoint{server.ip, 7}).ok());
  }
  ControlArm out;
  out.connect_cpu_per_op =
      static_cast<double>(client.cpu->busy_ns() - connect_cpu0) / conns;

  DEMI_CHECK(env.RunUntil([&] {
    for (const int fd : cfds) {
      if (!client.kernel->ConnectSucceeded(fd)) {
        return false;
      }
    }
    return true;
  }));
  env.sim().RunFor(1 * kMillisecond);  // final ACKs land in the server backlog
  DEMI_CHECK(sk.AcceptReady(lfd));

  auto& counters = env.sim().counters();
  const std::uint64_t sys0 = counters.Get(Counter::kSyscalls);
  const std::uint64_t fast0 = counters.Get(Counter::kFastcallCrossings);
  const std::uint64_t cpu0 = server.cpu->busy_ns();
  if (batch) {
    auto fds = sk.AcceptBatch(lfd, static_cast<std::size_t>(conns) * 2);
    DEMI_CHECK(fds.ok());
    out.accepted = fds->size();
  } else {
    for (int i = 0; i < conns; ++i) {
      auto fd = sk.Accept(lfd);
      DEMI_CHECK(fd.ok());
      ++out.accepted;
    }
  }
  out.drain_cpu = static_cast<double>(server.cpu->busy_ns() - cpu0);
  out.drain_syscalls = counters.Get(Counter::kSyscalls) - sys0;
  out.drain_fastcalls = counters.Get(Counter::kFastcallCrossings) - fast0;
  return out;
}

// --- part 3: the churn-heavy adaptive scenario, policy off vs on ------------------

AdaptiveHarnessConfig ScenarioConfig(bool adaptive, bool smoke) {
  AdaptiveHarnessConfig cfg;
  cfg.hot_flows = 2;
  cfg.cold_flows = 4;
  cfg.hot_period_ns = 20 * kMicrosecond;  // ~50k req/s: safely above promote band
  cfg.cold_period_ns = 2 * kMillisecond;  // ~500 req/s: safely below demote band
  cfg.churn_waves = smoke ? 6 : 16;
  cfg.churn_wave_size = 6;
  cfg.churn_period_ns = 3 * kMillisecond;
  cfg.adaptive = adaptive;
  cfg.fastcall = adaptive;  // the adaptive arm also runs the fastcall table
  cfg.max_flow_slots = 6;   // all six flows fit at connect time
  cfg.run_ns = smoke ? 25 * kMillisecond : 60 * kMillisecond;
  cfg.seed = 11;
  return cfg;
}

std::string Json(const ControlArm arms[4], int conns, const AdaptiveScenarioResult& st,
                 const AdaptiveScenarioResult& ad, const CostModel& cost, bool ok) {
  char buf[512];
  std::string j = "{\n";
  std::snprintf(buf, sizeof(buf),
                "  \"crossing_ns\": {\"syscall\": %lld, \"fastcall\": %lld},\n",
                static_cast<long long>(cost.syscall_ns),
                static_cast<long long>(cost.fastcall_crossing_ns));
  j += buf;
  static const char* kArmNames[4] = {"full_accept", "full_batch", "fastcall_accept",
                                     "fastcall_batch"};
  std::snprintf(buf, sizeof(buf), "  \"control_ops\": {\"conns\": %d", conns);
  j += buf;
  for (int i = 0; i < 4; ++i) {
    const ControlArm& a = arms[i];
    std::snprintf(buf, sizeof(buf),
                  ",\n    \"%s\": {\"connect_cpu_ns_per_op\": %.1f, "
                  "\"drain_cpu_ns\": %.0f, \"drain_syscalls\": %llu, "
                  "\"drain_fastcalls\": %llu, \"accepted\": %llu}",
                  kArmNames[i], a.connect_cpu_per_op, a.drain_cpu,
                  static_cast<unsigned long long>(a.drain_syscalls),
                  static_cast<unsigned long long>(a.drain_fastcalls),
                  static_cast<unsigned long long>(a.accepted));
    j += buf;
  }
  j += "},\n  \"adaptive_scenario\": {";
  const auto emit_arm = [&](const char* label, const AdaptiveScenarioResult& r,
                            const char* sep) {
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    \"%s\": {\"hot_p50_ns\": %llu, \"hot_p99_ns\": %llu, "
        "\"cold_p50_ns\": %llu, \"hot_completed\": %llu, \"cold_completed\": %llu, "
        "\"churn_conns_per_sec\": %.0f, \"promotions\": %llu, \"demotions\": %llu, "
        "\"syscalls\": %llu, \"fastcall_crossings\": %llu, \"accepts_batched\": %llu, "
        "\"live_flow_slots\": %llu, \"flow_slots_released\": %llu}",
        sep, label, static_cast<unsigned long long>(r.hot_p50_ns),
        static_cast<unsigned long long>(r.hot_p99_ns),
        static_cast<unsigned long long>(r.cold_p50_ns),
        static_cast<unsigned long long>(r.hot_completed),
        static_cast<unsigned long long>(r.cold_completed), r.churn_conns_per_sec,
        static_cast<unsigned long long>(r.promotions),
        static_cast<unsigned long long>(r.demotions),
        static_cast<unsigned long long>(r.syscalls),
        static_cast<unsigned long long>(r.fastcall_crossings),
        static_cast<unsigned long long>(r.accepts_batched),
        static_cast<unsigned long long>(r.live_flow_slots),
        static_cast<unsigned long long>(r.flow_slots_released));
    j += buf;
  };
  emit_arm("policy_off", st, "");
  emit_arm("policy_on", ad, ",");
  std::snprintf(buf, sizeof(buf), "\n  },\n  \"verdict\": \"%s\"\n}\n",
                ok ? "SHAPE-OK" : "SHAPE-FAIL");
  j += buf;
  return j;
}

int Run() {
  const bool smoke = []() {
    const char* s = std::getenv("BENCH_SMOKE");
    return s != nullptr && s[0] == '1';
  }();

  bench::Header("F2", "control path vs data path (Figure 2)",
                "the control path stays in the legacy kernel; the performance-"
                "critical data path never enters it — and when churn makes the "
                "control path hot, fastcall pricing + batched accepts + adaptive "
                "path placement keep it cheap");
  CostModel cost;
  bench::PrintCostModel(cost);

  TestHarness env(cost);
  auto& sh = env.AddHost("server", "10.0.0.1");
  HostOptions client_opts;
  client_opts.charges_clock = false;
  auto& ch = env.AddHost("client", "10.0.0.2", client_opts);

  // --- phase 1: control path (libOS bring-up + listen/connect/accept) ---
  const TimeNs setup_start = env.sim().now();
  const std::uint64_t sys0 = sh.cpu->counters().Get(Counter::kSyscalls);

  auto& server_libos = env.Catnip(sh);     // leases NIC queue, maps memory (kernel!)
  auto& client_libos = env.Catnip(ch);
  DemiEchoServer server(&server_libos, 7);
  DemiEchoClient client(&client_libos, Endpoint{sh.ip, 7}, 64, 1);
  env.RunUntil([&] { return client.completed() >= 1; }, 60 * kSecond);

  const TimeNs setup_elapsed = env.sim().now() - setup_start;
  const std::uint64_t setup_syscalls = sh.cpu->counters().Get(Counter::kSyscalls) - sys0;

  // --- phase 2: steady-state data path ---
  const int kSteadyOps = smoke ? 1000 : 5000;
  DemiEchoClient steady(&client_libos, Endpoint{sh.ip, 7}, 64, kSteadyOps);
  const TimeNs data_start = env.sim().now();
  const std::uint64_t sys1 = sh.cpu->counters().Get(Counter::kSyscalls);
  const std::uint64_t cpu1 = sh.cpu->busy_ns();
  env.RunUntil([&] { return steady.done(); }, 3600 * kSecond);
  const TimeNs data_elapsed = env.sim().now() - data_start;
  const std::uint64_t data_syscalls = sh.cpu->counters().Get(Counter::kSyscalls) - sys1;
  const double per_io_cpu =
      static_cast<double>(sh.cpu->busy_ns() - cpu1) / kSteadyOps;

  bench::Row("%-44s %14s %12s\n", "phase", "elapsed", "kernel sys");
  bench::Row("%-44s %11.1f us %12llu\n",
             "control path: libOS bring-up + first echo", ToMicros(setup_elapsed),
             static_cast<unsigned long long>(setup_syscalls));
  char data_label[64];
  std::snprintf(data_label, sizeof(data_label), "data path: %d echos", kSteadyOps);
  bench::Row("%-44s %11.1f us %12llu\n", data_label, ToMicros(data_elapsed),
             static_cast<unsigned long long>(data_syscalls));
  bench::Row("%-44s %11.3f us %12s\n", "data path: per-I/O server CPU",
             per_io_cpu / 1000.0, "0");

  const double amortized_over = static_cast<double>(setup_elapsed) /
                                (static_cast<double>(data_elapsed) / kSteadyOps);
  std::printf("\nsetup cost equals ~%.0f steady-state I/Os; after that the kernel is "
              "idle on this host.\n\n", amortized_over);

  // --- part 2: control-op pricing (full syscall vs fastcall, accept vs batch) ---
  const int kConns = smoke ? 8 : 32;
  // Arm order matches kArmNames in Json(): {fastcall?} x {batch?}.
  ControlArm arms[4];
  arms[0] = RunControlArm(/*fastcall=*/false, /*batch=*/false, kConns);
  arms[1] = RunControlArm(/*fastcall=*/false, /*batch=*/true, kConns);
  arms[2] = RunControlArm(/*fastcall=*/true, /*batch=*/false, kConns);
  arms[3] = RunControlArm(/*fastcall=*/true, /*batch=*/true, kConns);

  bench::Row("%-26s %14s | %12s %10s %10s\n", "control path pricing",
             "connect ns/op", "drain CPU ns", "syscalls", "fastcalls");
  static const char* kRowNames[4] = {"full crossing, accept xN", "full crossing, batch",
                                     "fastcall, accept xN", "fastcall, batch"};
  for (int i = 0; i < 4; ++i) {
    bench::Row("%-26s %14.1f | %12.0f %10llu %10llu\n", kRowNames[i],
               arms[i].connect_cpu_per_op, arms[i].drain_cpu,
               static_cast<unsigned long long>(arms[i].drain_syscalls),
               static_cast<unsigned long long>(arms[i].drain_fastcalls));
  }
  std::printf("(%d connections per arm; a batch drain is ONE crossing total)\n\n",
              kConns);

  // --- part 3: adaptive scenario, path policy off vs on ---
  AdaptiveScenarioResult off_arm;
  {
    AdaptiveEchoHarness h(ScenarioConfig(/*adaptive=*/false, smoke));
    off_arm = h.Run();
  }
  AdaptiveScenarioResult on_arm;
  {
    AdaptiveEchoHarness h(ScenarioConfig(/*adaptive=*/true, smoke));
    on_arm = h.Run();
  }

  bench::Row("%-30s %14s %14s\n", "adaptive scenario", "policy off", "policy on");
  bench::Row("%-30s %14llu %14llu\n", "hot flow RTT p50 (ns)",
             static_cast<unsigned long long>(off_arm.hot_p50_ns),
             static_cast<unsigned long long>(on_arm.hot_p50_ns));
  bench::Row("%-30s %14llu %14llu\n", "cold flow RTT p50 (ns)",
             static_cast<unsigned long long>(off_arm.cold_p50_ns),
             static_cast<unsigned long long>(on_arm.cold_p50_ns));
  bench::Row("%-30s %14.0f %14.0f\n", "churn conns/sec",
             off_arm.churn_conns_per_sec, on_arm.churn_conns_per_sec);
  bench::Row("%-30s %14llu %14llu\n", "demotions",
             static_cast<unsigned long long>(off_arm.demotions),
             static_cast<unsigned long long>(on_arm.demotions));
  bench::Row("%-30s %14llu %14llu\n", "policy-held bypass slots",
             static_cast<unsigned long long>(off_arm.live_flow_slots),
             static_cast<unsigned long long>(on_arm.live_flow_slots));
  bench::Row("%-30s %14llu %14llu\n", "flow slots released",
             static_cast<unsigned long long>(off_arm.flow_slots_released),
             static_cast<unsigned long long>(on_arm.flow_slots_released));
  bench::Row("%-30s %14llu %14llu\n", "fastcall crossings",
             static_cast<unsigned long long>(off_arm.fastcall_crossings),
             static_cast<unsigned long long>(on_arm.fastcall_crossings));
  bench::Row("%-30s %14llu %14llu\n", "accepts batched",
             static_cast<unsigned long long>(off_arm.accepts_batched),
             static_cast<unsigned long long>(on_arm.accepts_batched));

  // Verdict: phase split intact; fastcall strictly cheaper per control op; a batch
  // drain is one crossing; the policy returns capacity without costing the hot flows
  // their bypass latency (25% headroom absorbs scheduling noise between the arms).
  const bool phase_split_ok =
      setup_syscalls > 0 && data_syscalls == 0 && steady.done();
  const bool fastcall_cheaper =
      arms[2].connect_cpu_per_op < arms[0].connect_cpu_per_op &&
      arms[2].drain_cpu < arms[0].drain_cpu &&
      arms[0].drain_syscalls == static_cast<std::uint64_t>(kConns) &&
      arms[2].drain_fastcalls == static_cast<std::uint64_t>(kConns);
  const bool batch_is_one_crossing =
      arms[1].drain_syscalls == 1 && arms[3].drain_fastcalls == 1 &&
      arms[3].accepted == static_cast<std::uint64_t>(kConns) &&
      arms[3].drain_cpu < arms[2].drain_cpu;
  // Policy off keeps PR-2 semantics: no slot metering, no voluntary moves. Policy
  // on: every cold flow demoted once and returned its slot; only the two hot flows
  // still hold bypass capacity at the end of the run.
  const bool adaptive_releases_capacity =
      off_arm.demotions == 0 && off_arm.flow_slots_released == 0 &&
      on_arm.live_flow_slots == 2 && on_arm.flow_slots_released >= 4 &&
      on_arm.demotions >= 4;
  const bool hot_latency_kept =
      on_arm.hot_p50_ns <=
      off_arm.hot_p50_ns + off_arm.hot_p50_ns / 4;

  const bool ok = phase_split_ok && fastcall_cheaper && batch_is_one_crossing &&
                  adaptive_releases_capacity && hot_latency_kept;
  bench::WriteMetricsFile("bench_f2_controlpath",
                          Json(arms, kConns, off_arm, on_arm, cost, ok));
  bench::Verdict(ok,
                 "kernel syscalls appear ONLY in the control path; fastcall pricing "
                 "beats full crossings on every control op; AcceptBatch drains a "
                 "storm in one crossing; the path policy returns cold flows' bypass "
                 "slots while hot flows keep bypass latency");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
