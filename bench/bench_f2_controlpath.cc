// F2 — Figure 2: the Demikernel split — the legacy kernel keeps the control path
// (device allocation, connection setup), the libOS owns the data path.
//
// We measure the one-time control-path cost of bringing up a Catnip application
// (device-queue lease, IOMMU mapping, connect handshake) against the steady-state
// per-I/O cost, and show where the kernel is (and is not) involved.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/actors.h"
#include "src/core/harness.h"

namespace demi {
namespace {

int Run() {
  bench::Header("F2", "control path vs data path (Figure 2)",
                "the control path stays in the legacy kernel and is paid once; the "
                "performance-critical data path never enters the kernel");
  CostModel cost;
  bench::PrintCostModel(cost);

  TestHarness env(cost);
  auto& sh = env.AddHost("server", "10.0.0.1");
  HostOptions client_opts;
  client_opts.charges_clock = false;
  auto& ch = env.AddHost("client", "10.0.0.2", client_opts);

  // --- phase 1: control path (libOS bring-up + listen/connect/accept) ---
  const TimeNs setup_start = env.sim().now();
  const std::uint64_t sys0 = sh.cpu->counters().Get(Counter::kSyscalls);

  auto& server_libos = env.Catnip(sh);     // leases NIC queue, maps memory (kernel!)
  auto& client_libos = env.Catnip(ch);
  DemiEchoServer server(&server_libos, 7);
  DemiEchoClient client(&client_libos, Endpoint{sh.ip, 7}, 64, 1);
  env.RunUntil([&] { return client.completed() >= 1; }, 60 * kSecond);

  const TimeNs setup_elapsed = env.sim().now() - setup_start;
  const std::uint64_t setup_syscalls = sh.cpu->counters().Get(Counter::kSyscalls) - sys0;

  // --- phase 2: steady-state data path ---
  DemiEchoClient steady(&client_libos, Endpoint{sh.ip, 7}, 64, 5000);
  const TimeNs data_start = env.sim().now();
  const std::uint64_t sys1 = sh.cpu->counters().Get(Counter::kSyscalls);
  const std::uint64_t cpu1 = sh.cpu->busy_ns();
  env.RunUntil([&] { return steady.done(); }, 3600 * kSecond);
  const TimeNs data_elapsed = env.sim().now() - data_start;
  const std::uint64_t data_syscalls = sh.cpu->counters().Get(Counter::kSyscalls) - sys1;
  const double per_io_cpu = static_cast<double>(sh.cpu->busy_ns() - cpu1) / 5000.0;

  bench::Row("%-44s %14s %12s\n", "phase", "elapsed", "kernel sys");
  bench::Row("%-44s %11.1f us %12llu\n",
             "control path: libOS bring-up + first echo", ToMicros(setup_elapsed),
             static_cast<unsigned long long>(setup_syscalls));
  bench::Row("%-44s %11.1f us %12llu\n", "data path: 5000 echos", ToMicros(data_elapsed),
             static_cast<unsigned long long>(data_syscalls));
  bench::Row("%-44s %11.3f us %12s\n", "data path: per-I/O server CPU",
             per_io_cpu / 1000.0, "0");

  const double amortized_over = static_cast<double>(setup_elapsed) /
                                (static_cast<double>(data_elapsed) / 5000.0);
  std::printf("\nsetup cost equals ~%.0f steady-state I/Os; after that the kernel is "
              "idle on this host.\n", amortized_over);

  bench::Verdict(setup_syscalls > 0 && data_syscalls == 0 && steady.done(),
                 "kernel syscalls appear ONLY in the control path; the data path "
                 "makes zero kernel crossings");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
