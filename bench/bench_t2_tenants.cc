// T2 — multi-tenant fairness on a shared kernel-bypass device.
//
// Three tenants with DWRR weights 4/2/1 each offer an identical, deliberately
// oversubscribing frame flood at one shared NIC's TX DMA engine (every queue
// stays backlogged for the whole window). The claim under test:
//
//  1. Isolation ON: the device's deficit-weighted round robin divides engine
//     bytes by weight — measured shares land within 10% (relative) of 4/7, 2/7,
//     1/7 regardless of arrival interleaving.
//  2. Isolation OFF: the same offered load through the unchecked FIFO engine
//     yields shares that track *offered load* (equal thirds here), not policy —
//     the vulnerable baseline the chaos suite builds on.
//
// Shares are virtual-time exact and deterministic, so both checks gate the
// verdict even in smoke mode.
//
// Environment:
//   BENCH_SMOKE=1    shorter measurement window (ctest smoke).
//   BENCH_METRICS_DIR  where to drop bench_t2_tenants.metrics.json (the
//                      run_benches.sh harness assembles BENCH_tenants.json
//                      from it).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/hw/fabric.h"
#include "src/hw/nic.h"
#include "src/hw/tenant.h"
#include "src/load/hostile_tenant.h"
#include "src/sim/simulation.h"

namespace demi {
namespace {

constexpr std::uint32_t kWeights[3] = {4, 2, 1};

struct TenantShare {
  std::string name;
  std::uint32_t weight = 0;
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  double share = 0.0;
  double expected = 0.0;
};

struct ArmResult {
  std::vector<TenantShare> tenants;
  std::uint64_t total_bytes = 0;
};

// One measurement arm: shared 3-queue NIC, one flood driver per tenant, equal
// offered load, measure per-tenant engine byte shares over `measure` ns.
ArmResult RunArm(bool isolation_on, TimeNs warmup, TimeNs measure) {
  Simulation sim;
  Fabric fabric(&sim);
  // The drivers' host charges no clock: virtual time advances only through the
  // device's DMA engine events, so shares reflect engine scheduling alone.
  HostCpu host(&sim, "tenants", /*charges_clock=*/false);
  HostCpu sink_host(&sim, "sink", /*charges_clock=*/false);

  NicConfig nic_cfg;
  nic_cfg.num_queues = 3;
  nic_cfg.ring_size = 4096;
  SimNic nic(&host, &fabric, MacAddress::ForHost(1), nic_cfg);
  SimNic sink(&sink_host, &fabric, MacAddress::ForHost(99), NicConfig{});

  TenantRegistry registry(&sim);
  registry.set_isolation_enabled(isolation_on);
  nic.AttachTenantRegistry(&registry);

  std::vector<TenantId> ids;
  std::vector<std::unique_ptr<HostileTenant>> drivers;
  for (int i = 0; i < 3; ++i) {
    TenantQosConfig qos;
    qos.name = "t" + std::to_string(i);
    qos.weight = kWeights[i];
    const TenantId id = registry.Create(qos);
    ids.push_back(id);
    nic.BindQueueTenant(i, id);
    HostileTenantConfig load;
    load.doorbell_rate_per_sec = 200'000.0;  // 32 frames/doorbell = 6.4M fps each
    load.burst_frames = 32;
    load.frame_bytes = 1500;
    load.bogus_fraction = 0.0;
    load.seed = 0x7e4a + static_cast<std::uint64_t>(i);
    drivers.push_back(std::make_unique<HostileTenant>(&sim, &nic, i, id, &registry,
                                                      sink.mac(), load));
  }
  // Staggered starts break tick ties between the drivers; the engine stays
  // saturated either way (total offered ~19M fps vs ~10M fps engine capacity).
  for (int i = 0; i < 3; ++i) {
    sim.Schedule(static_cast<TimeNs>(100 * i), [&drivers, i] { drivers[i]->Start(); });
  }

  sim.RunFor(warmup);
  std::uint64_t base_bytes[3];
  std::uint64_t base_frames[3];
  for (int i = 0; i < 3; ++i) {
    base_bytes[i] = registry.stats(ids[i]).tx_bytes;
    base_frames[i] = registry.stats(ids[i]).tx_frames;
  }
  sim.RunFor(measure);

  ArmResult out;
  std::uint32_t weight_sum = 0;
  for (std::uint32_t w : kWeights) {
    weight_sum += w;
  }
  for (int i = 0; i < 3; ++i) {
    TenantShare ts;
    ts.name = registry.config(ids[i]).name;
    ts.weight = kWeights[i];
    ts.tx_bytes = registry.stats(ids[i]).tx_bytes - base_bytes[i];
    ts.tx_frames = registry.stats(ids[i]).tx_frames - base_frames[i];
    ts.expected = static_cast<double>(kWeights[i]) / weight_sum;
    out.total_bytes += ts.tx_bytes;
    out.tenants.push_back(ts);
  }
  for (TenantShare& ts : out.tenants) {
    ts.share = out.total_bytes > 0
                   ? static_cast<double>(ts.tx_bytes) / static_cast<double>(out.total_bytes)
                   : 0.0;
  }
  for (auto& d : drivers) {
    d->Stop();
  }
  return out;
}

std::string Json(const ArmResult& on, const ArmResult& off, bool ok) {
  char buf[256];
  std::string j = "{\n";
  const auto emit_arm = [&](const char* label, const ArmResult& arm) {
    j += std::string("  \"") + label + "\": [";
    for (std::size_t i = 0; i < arm.tenants.size(); ++i) {
      const TenantShare& t = arm.tenants[i];
      std::snprintf(buf, sizeof(buf),
                    "%s\n    {\"name\": \"%s\", \"weight\": %u, \"tx_frames\": %llu, "
                    "\"tx_bytes\": %llu, \"share\": %.4f, \"expected_share\": %.4f}",
                    i ? "," : "", t.name.c_str(), t.weight,
                    static_cast<unsigned long long>(t.tx_frames),
                    static_cast<unsigned long long>(t.tx_bytes), t.share, t.expected);
      j += buf;
    }
    j += "\n  ]";
  };
  emit_arm("isolation_on", on);
  j += ",\n";
  emit_arm("isolation_off", off);
  std::snprintf(buf, sizeof(buf), ",\n  \"verdict\": \"%s\"\n}\n",
                ok ? "SHAPE-OK" : "SHAPE-FAIL");
  j += buf;
  return j;
}

int Run() {
  const bool smoke = []() {
    const char* s = std::getenv("BENCH_SMOKE");
    return s != nullptr && s[0] == '1';
  }();

  bench::Header("T2", "per-tenant DWRR fairness on a shared bypass NIC",
                "with isolation on, shared-engine byte shares match DWRR weights "
                "within 10%; with isolation off, shares track offered load and "
                "ignore policy");

  const TimeNs warmup = 10 * kMillisecond;
  const TimeNs measure = smoke ? 30 * kMillisecond : 120 * kMillisecond;

  const ArmResult on = RunArm(/*isolation_on=*/true, warmup, measure);
  const ArmResult off = RunArm(/*isolation_on=*/false, warmup, measure);

  bench::Row("%8s %7s | %14s %9s %9s | %14s %9s\n", "tenant", "weight", "on bytes",
             "on share", "expected", "off bytes", "off share");
  bench::Row("--------------------------------------------------------------------"
             "----------\n");
  bool shares_match = true;
  for (std::size_t i = 0; i < on.tenants.size(); ++i) {
    const TenantShare& t = on.tenants[i];
    const TenantShare& f = off.tenants[i];
    bench::Row("%8s %7u | %14llu %8.1f%% %8.1f%% | %14llu %8.1f%%\n",
               t.name.c_str(), t.weight, static_cast<unsigned long long>(t.tx_bytes),
               100.0 * t.share, 100.0 * t.expected,
               static_cast<unsigned long long>(f.tx_bytes), 100.0 * f.share);
    if (std::abs(t.share - t.expected) > 0.10 * t.expected) {
      shares_match = false;
    }
  }
  // Off: equal offered load through a FIFO engine serves roughly equal thirds —
  // in particular the weight-4 tenant must NOT get anywhere near its 4/7 share.
  const bool off_ignores_weights =
      off.tenants[0].share < 0.45 && off.tenants[2].share > 0.20;
  const bool busy = on.total_bytes > 0 && off.total_bytes > 0;

  const bool ok = busy && shares_match && off_ignores_weights;
  bench::WriteMetricsFile("bench_t2_tenants", Json(on, off, ok));
  bench::Verdict(ok,
                 "DWRR shares within 10% of 4/7, 2/7, 1/7 with isolation on; "
                 "FIFO shares track offered load with isolation off");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
