// Shared reporting helpers for the experiment benches. Every bench prints:
//   - the experiment id and the paper claim it reproduces,
//   - the cost model in force (so numbers are auditable),
//   - a fixed-width table of results,
//   - a PASS/FAIL verdict on the claim's *shape* (who wins, by roughly how much).

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/sim/cost_model.h"

namespace demi::bench {

// Writes a bench's metrics JSON to $BENCH_METRICS_DIR/<bench>.metrics.json when the
// harness (bench/run_benches.sh) asks for it; a no-op otherwise, so standalone bench
// runs stay side-effect free.
inline void WriteMetricsFile(const char* bench, const std::string& json) {
  const char* dir = std::getenv("BENCH_METRICS_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  const std::string path = std::string(dir) + "/" + bench + ".metrics.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "metrics: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

inline void Header(const char* id, const char* title, const char* claim) {
  std::printf("================================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper claim: %s\n", claim);
  std::printf("================================================================================\n");
}

inline void PrintCostModel(const CostModel& cost) {
  std::printf("%s", cost.Describe().c_str());
  std::printf("--------------------------------------------------------------------------------\n");
}

// printf-style row helper so tables line up without iostream ceremony.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
}

inline void Verdict(bool ok, const std::string& what) {
  std::printf("[%s] %s\n\n", ok ? "SHAPE-OK" : "SHAPE-FAIL", what.c_str());
}

}  // namespace demi::bench

#endif  // BENCH_BENCH_UTIL_H_
