// A2 — ablation/extension: one-sided RDMA GETs (Pilaf/FaRM-style, §6) vs the
// Demikernel's portable two-sided queue design (catmint).
//
// The paper: "the Demikernel targets applications that want the benefits of
// kernel-bypass and are willing to sacrifice access to hardware-specific features for
// portability." This bench measures exactly what is sacrificed (and what isn't):
// one-sided GETs skip the server CPU entirely, but couple every client to the server's
// memory layout, rkey, and slot geometry.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/kv_runners.h"
#include "src/apps/onesided_kv.h"

namespace demi {
namespace {

struct OneSidedResult {
  Histogram latency;
  std::uint64_t server_cpu_per_get = 0;
  bool ok = false;
};

OneSidedResult RunOneSided(int num_gets) {
  TestHarness env;
  HostOptions opts;
  opts.with_rdma = true;
  opts.with_nic = false;
  opts.with_kernel = false;
  auto& sh = env.AddHost("server", "10.0.0.1", opts);
  HostOptions copts = opts;
  copts.charges_clock = false;
  auto& ch = env.AddHost("client", "10.0.0.2", copts);

  OneSidedKvServer server(sh.cpu.get(), sh.rdma.get(), "kv", 4096);
  KvWorkloadConfig wcfg;
  wcfg.num_keys = 512;
  wcfg.value_bytes = 64;
  KvWorkload loader(wcfg);
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    const RespCommand cmd = loader.LoadCommand(k);
    (void)server.Put(cmd[1], cmd[2]);  // tolerate rare collisions: skip
  }

  auto qp = ch.rdma->Connect("kv");
  env.RunUntil([&] { return qp->connected(); }, kSecond);
  (void)server.Accept();
  OneSidedKvClient client(ch.cpu.get(), ch.rdma.get(), qp, server.rkey(),
                          server.slots());

  const std::uint64_t server_cpu0 = sh.cpu->busy_ns();
  OneSidedResult out;
  out.ok = true;
  KvWorkload picker(wcfg);
  int hits = 0;
  for (int i = 0; i < num_gets; ++i) {
    const RespCommand cmd = picker.LoadCommand(static_cast<std::uint64_t>(i) %
                                               wcfg.num_keys);
    const TimeNs start = env.sim().now();
    auto v = client.Get(env.sim(), cmd[1]);
    if (v.ok()) {
      ++hits;
      out.latency.Record(static_cast<std::uint64_t>(env.sim().now() - start));
    }
  }
  out.server_cpu_per_get = (sh.cpu->busy_ns() - server_cpu0) / num_gets;
  out.ok = hits > num_gets * 9 / 10;  // collisions may drop a few keys at load time
  return out;
}

int Run() {
  bench::Header("A2", "one-sided RDMA GET vs portable two-sided queues (Section 6)",
                "hardware-specialized one-sided reads beat even the fastest portable "
                "design on latency and server CPU — the portability trade the "
                "Demikernel explicitly makes");
  CostModel cost;
  bench::PrintCostModel(cost);

  constexpr int kGets = 1500;
  const OneSidedResult onesided = RunOneSided(kGets);

  // The portable comparison: catmint GET over Demikernel queues (two-sided RPC).
  bench::KvRunOptions opt;
  opt.cost = cost;
  opt.kind = "catmint";
  opt.requests_per_client = kGets;
  opt.workload.num_keys = 512;
  opt.workload.get_ratio = 1.0;
  opt.workload.value_bytes = 64;
  auto twosided = bench::RunKv(opt);
  const std::uint64_t twosided_cpu =
      twosided.server_cpu_ns / std::max<std::uint64_t>(twosided.completed, 1);

  bench::Row("%-34s %12s %12s %16s\n", "design", "p50 ns", "p99 ns", "server cpu/GET");
  bench::Row("--------------------------------------------------------------------------------\n");
  bench::Row("%-34s %12llu %12llu %13llu ns\n", "one-sided READ (layout-coupled)",
             static_cast<unsigned long long>(onesided.latency.P50()),
             static_cast<unsigned long long>(onesided.latency.P99()),
             static_cast<unsigned long long>(onesided.server_cpu_per_get));
  bench::Row("%-34s %12llu %12llu %13llu ns\n", "catmint queues (portable)",
             static_cast<unsigned long long>(twosided.latency.P50()),
             static_cast<unsigned long long>(twosided.latency.P99()),
             static_cast<unsigned long long>(twosided_cpu));

  std::printf("\none-sided wins: no server CPU (%llu ns/GET) and no request "
              "processing in the RTT.\nwhat it costs: clients hard-code the slot "
              "layout, table size, and rkey — the hardware\ncoupling and engineering "
              "effort the paper's Section 1 warns about. catmint keeps the\n"
              "application portable across every libOS for a %.1fx latency premium.\n",
              static_cast<unsigned long long>(onesided.server_cpu_per_get),
              static_cast<double>(twosided.latency.P50()) /
                  static_cast<double>(onesided.latency.P50()));

  bench::Verdict(onesided.ok && twosided.ok &&
                     onesided.latency.P50() < twosided.latency.P50() &&
                     onesided.server_cpu_per_get < 100,
                 "one-sided GETs cost ~zero server CPU and less latency; the "
                 "Demikernel trades that for portability, as the paper states");
  return 0;
}

}  // namespace
}  // namespace demi

int main() { return demi::Run(); }
