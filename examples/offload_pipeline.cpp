// Queue combinators and device offload (§4.2/§4.3): a telemetry pipeline built from
// filter/map/sort queues over a UDP socket, with the filter offloaded to a SmartNIC
// when the hardware supports it.
//
// The pipeline:   nic -> udp queue -> filter(severity >= WARN) -> map(annotate)
// and a sort() priority queue drained by severity, demonstrating every queue-
// manipulation call in Figure 3 (including qconnect to splice into a sink).
//
// Usage: ./build/examples/offload_pipeline [--no-offload]

#include <cstdio>
#include <cstring>
#include <string>

#include "include/demikernel/demikernel.h"

int main(int argc, char** argv) {
  using namespace demi;
  const bool use_offload = !(argc > 1 && std::string(argv[1]) == "--no-offload");

  TestHarness env;
  HostOptions server_opts;
  server_opts.nic_offload = use_offload;  // SmartNIC vs plain NIC
  auto& collector_host = env.AddHost("collector", "10.0.0.1", server_opts);
  auto& sensor_host = env.AddHost("sensor", "10.0.0.2");
  CatnipLibOS& collector = env.Catnip(collector_host);
  CatnipLibOS& sensor = env.Catnip(sensor_host);

  // Collector: a UDP queue; each datagram is one telemetry record ("LEVEL message").
  const QDesc udp_qd = *collector.SocketUdp();
  if (!collector.Bind(udp_qd, 9999).ok()) {
    return 1;
  }

  // filter: only WARN/ERROR records reach the host. On a SmartNIC this program runs
  // on the device and dropped packets never cost host CPU (§4.3).
  ElementPredicate important{
      [](const SgArray& sga) {
        const std::string s = sga.ToString();
        return s.rfind("WARN", 0) == 0 || s.rfind("ERROR", 0) == 0;
      },
      /*host_cost_ns=*/400};
  const QDesc filtered = *collector.Filter(udp_qd, important);

  // map: annotate each record.
  ElementTransform annotate{
      [](const SgArray& sga) {
        return SgArray::FromString("[collector] " + sga.ToString());
      },
      /*host_cost_ns=*/200};
  const QDesc annotated = *collector.MapQueue(filtered, annotate);

  // sort: ERROR pops before WARN. qconnect splices the pipeline into it.
  ElementComparator by_severity{
      [](const SgArray& a, const SgArray& b) {
        return a.ToString().find("ERROR") != std::string::npos &&
               b.ToString().find("ERROR") == std::string::npos;
      },
      /*host_cost_ns=*/50};
  const QDesc inbox = *collector.QueueCreate();
  const QDesc priority_inbox = *collector.Sort(inbox, by_severity);
  (void)collector.QConnect(annotated, priority_inbox);

  // Sensor: blast mixed-severity telemetry datagrams.
  const QDesc tx = *sensor.SocketUdp();
  (void)sensor.Connect(tx, Endpoint{collector_host.ip, 9999});
  const char* records[] = {
      "INFO heartbeat ok",          "WARN fan speed degraded",
      "INFO cpu 35%",               "ERROR disk smart failure",
      "INFO heartbeat ok",          "WARN temperature 81C",
      "INFO network ok",            "ERROR power supply lost",
  };
  for (const char* rec : records) {
    (void)sensor.BlockingPush(tx, SgArray::FromString(rec));
  }
  env.sim().RunFor(5 * kMillisecond);  // let the pipeline drain

  std::printf("mode: %s\n", use_offload ? "filter OFFLOADED to SmartNIC"
                                        : "filter on host CPU");
  std::puts("priority-ordered records reaching the application:");
  for (int i = 0; i < 4; ++i) {
    auto r = collector.BlockingPop(priority_inbox);
    if (!r.ok() || !r->status.ok()) {
      break;
    }
    std::printf("  %s\n", r->sga.ToString().c_str());
  }

  const auto& counters = collector_host.cpu->counters();
  std::printf("\ncollector host CPU spent: %.1f us; device compute: %.1f us\n",
              static_cast<double>(counters.Get(Counter::kHostCpuNs)) / 1000.0,
              static_cast<double>(counters.Get(Counter::kDeviceComputeNs)) / 1000.0);
  std::printf("packets that reached host memory: %llu of 8 sent\n",
              static_cast<unsigned long long>(counters.Get(Counter::kPacketsRx)));
  return 0;
}
