// A Redis-like key-value server on Demikernel queues — the paper's motivating
// workload (§3.2) — plus a load-generating client fleet, with the same application
// run over the POSIX baseline for comparison.
//
// Usage: ./build/examples/kv_server [catnip|catnap|catmint|posix] [num_clients]

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "include/demikernel/demikernel.h"
#include "src/apps/actors.h"

namespace {

constexpr std::uint16_t kPort = 6379;

struct RunResult {
  demi::Histogram latency;
  std::uint64_t requests = 0;
  double seconds = 0;
  std::uint64_t syscalls = 0;
  std::uint64_t bytes_copied = 0;
};

RunResult RunDemi(const std::string& libos_kind, int num_clients) {
  using namespace demi;
  TestHarness env;
  HostOptions server_opts;
  HostOptions client_opts;
  client_opts.charges_clock = false;
  if (libos_kind == "catmint") {
    server_opts.with_rdma = true;
    server_opts.with_nic = false;
    server_opts.with_kernel = false;
    client_opts.with_rdma = true;
    client_opts.with_nic = false;
    client_opts.with_kernel = false;
  }
  auto& sh = env.AddHost("server", "10.0.0.1", server_opts);

  LibOS* server_libos = nullptr;
  if (libos_kind == "catnip") {
    server_libos = &env.Catnip(sh);
  } else if (libos_kind == "catnap") {
    server_libos = &env.Catnap(sh);
  } else {
    server_libos = &env.Catmint(sh);
  }
  DemiKvServer server(server_libos, kPort);

  KvWorkloadConfig wcfg;
  wcfg.num_keys = 1000;
  wcfg.get_ratio = 0.9;
  wcfg.value_bytes = 64;
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    KvWorkload loader(wcfg);
    (void)server.engine().Execute(loader.LoadCommand(k));
  }

  std::vector<std::unique_ptr<KvWorkload>> workloads;
  std::vector<std::unique_ptr<DemiKvClient>> clients;
  for (int i = 0; i < num_clients; ++i) {
    auto& ch = env.AddHost("client" + std::to_string(i),
                           "10.0.0." + std::to_string(10 + i), client_opts);
    LibOS* cl = nullptr;
    if (libos_kind == "catnip") {
      cl = &env.Catnip(ch);
    } else if (libos_kind == "catnap") {
      cl = &env.Catnap(ch);
    } else {
      cl = &env.Catmint(ch);
    }
    wcfg.seed = 42 + i;
    workloads.push_back(std::make_unique<KvWorkload>(wcfg));
    clients.push_back(std::make_unique<DemiKvClient>(cl, Endpoint{sh.ip, kPort},
                                                     workloads.back().get(), 2000));
  }

  const TimeNs start = env.sim().now();
  env.RunUntil(
      [&] {
        for (const auto& c : clients) {
          if (!c->done()) {
            return false;
          }
        }
        return true;
      },
      3600 * kSecond);

  RunResult out;
  for (const auto& c : clients) {
    out.latency.Merge(c->latency());
    out.requests += c->completed();
  }
  out.seconds = ToSeconds(env.sim().now() - start);
  out.syscalls = sh.cpu->counters().Get(Counter::kSyscalls);
  out.bytes_copied = sh.cpu->counters().Get(Counter::kBytesCopied);
  return out;
}

RunResult RunPosix(int num_clients) {
  using namespace demi;
  TestHarness env;
  auto& sh = env.AddHost("server", "10.0.0.1");
  PosixKvServer server(sh.kernel.get(), kPort);

  KvWorkloadConfig wcfg;
  wcfg.num_keys = 1000;
  wcfg.get_ratio = 0.9;
  wcfg.value_bytes = 64;
  for (std::uint64_t k = 0; k < wcfg.num_keys; ++k) {
    KvWorkload loader(wcfg);
    (void)server.engine().Execute(loader.LoadCommand(k));
  }

  HostOptions client_opts;
  client_opts.charges_clock = false;
  std::vector<std::unique_ptr<KvWorkload>> workloads;
  std::vector<std::unique_ptr<PosixKvClient>> clients;
  for (int i = 0; i < num_clients; ++i) {
    auto& ch = env.AddHost("client" + std::to_string(i),
                           "10.0.0." + std::to_string(10 + i), client_opts);
    wcfg.seed = 42 + i;
    workloads.push_back(std::make_unique<KvWorkload>(wcfg));
    clients.push_back(std::make_unique<PosixKvClient>(ch.kernel.get(), Endpoint{sh.ip, kPort},
                                                      workloads.back().get(), 2000));
  }
  const TimeNs start = env.sim().now();
  env.RunUntil(
      [&] {
        for (const auto& c : clients) {
          if (!c->done()) {
            return false;
          }
        }
        return true;
      },
      3600 * kSecond);

  RunResult out;
  for (const auto& c : clients) {
    out.latency.Merge(c->latency());
    out.requests += c->completed();
  }
  out.seconds = ToSeconds(env.sim().now() - start);
  out.syscalls = sh.cpu->counters().Get(Counter::kSyscalls);
  out.bytes_copied = sh.cpu->counters().Get(Counter::kBytesCopied);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string kind = argc > 1 ? argv[1] : "catnip";
  const int num_clients = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("KV server (%s), %d closed-loop clients, 90%% GET, 64B values\n",
              kind.c_str(), num_clients);
  const RunResult r = kind == "posix" ? RunPosix(num_clients) : RunDemi(kind, num_clients);

  std::printf("  requests: %llu in %.3f simulated seconds  ->  %.0f req/s\n",
              static_cast<unsigned long long>(r.requests), r.seconds,
              static_cast<double>(r.requests) / r.seconds);
  std::printf("  latency:  %s\n", r.latency.Summary("ns").c_str());
  std::printf("  server-side syscalls: %llu, bytes copied: %llu\n",
              static_cast<unsigned long long>(r.syscalls),
              static_cast<unsigned long long>(r.bytes_copied));
  return 0;
}
