// Storage queues with the Catfish libOS (§5.3): an append-only event log written
// straight to a simulated NVMe device — no kernel, no copies, push == durable — then
// replayed after reopen, including the CRC validation of the log-structured layout.
//
// Usage: ./build/examples/file_log

#include <cstdio>
#include <string>

#include "include/demikernel/demikernel.h"

int main() {
  using namespace demi;

  TestHarness env;
  HostOptions opts;
  opts.with_nic = false;
  opts.with_kernel = false;
  opts.with_block_device = true;
  auto& host = env.AddHost("storage", "10.0.0.1", opts);
  CatfishLibOS& libos = env.Catfish(host);

  // --- write a little transaction log ---
  const QDesc log = *libos.Creat("/wal/orders");
  const char* events[] = {
      "order#1 create item=widget qty=3",
      "order#1 pay amount=42.00",
      "order#2 create item=gizmo qty=1",
      "order#1 ship carrier=owl",
      "order#2 cancel reason=out-of-stock",
  };
  const TimeNs t0 = env.sim().now();
  for (const char* event : events) {
    auto r = libos.BlockingPush(log, SgArray::FromString(event));
    std::printf("append %-40s -> %s (durable at +%.1f us)\n", event,
                r->status.ToString().c_str(), ToMicros(env.sim().now() - t0));
  }
  (void)libos.Close(log);

  // --- reopen and replay: data comes back from the device blocks ---
  std::puts("\nreplaying after close/reopen:");
  const QDesc replay = *libos.Open("/wal/orders");
  int index = 0;
  while (true) {
    auto r = libos.BlockingPop(replay);
    if (!r.ok() || !r->status.ok()) {
      std::printf("end of log: %s\n",
                  r.ok() ? r->status.ToString().c_str() : r.status().ToString().c_str());
      break;
    }
    std::printf("  [%d] %s\n", index++, r->sga.ToString().c_str());
  }

  std::printf("\nNVMe commands issued: %llu, syscalls: %llu (storage path bypasses the kernel)\n",
              static_cast<unsigned long long>(host.cpu->counters().Get(Counter::kNvmeOps)),
              static_cast<unsigned long long>(host.cpu->counters().Get(Counter::kSyscalls)));
  return 0;
}
