// Quickstart: the Demikernel I/O-queue abstraction in ~80 lines.
//
// Two simulated hosts with DPDK-style NICs; a server that echoes queue elements and a
// client that pushes one. Shows the Figure 3 interface end to end: socket -> bind ->
// listen -> accept/connect (as qtokens) -> push/pop -> wait.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "include/demikernel/demikernel.h"

int main() {
  using namespace demi;

  // A simulated rack: two hosts, each with a kernel-bypass NIC, linked by a switch.
  TestHarness env;
  auto& server_host = env.AddHost("server", "10.0.0.1");
  auto& client_host = env.AddHost("client", "10.0.0.2");

  // Each application gets a Catnip library OS: the user-level stack over its NIC.
  CatnipLibOS& server = env.Catnip(server_host);
  CatnipLibOS& client = env.Catnip(client_host);

  // --- server control path (unchanged from POSIX, but returns queue descriptors) ---
  const QDesc listen_qd = *server.Socket();
  if (!server.Bind(listen_qd, 7000).ok() || !server.Listen(listen_qd).ok()) {
    std::puts("server setup failed");
    return 1;
  }
  const QToken accept_token = *server.AcceptAsync(listen_qd);

  // --- client connects ---
  const QDesc client_qd = *client.Socket();
  const QToken connect_token = *client.ConnectAsync(client_qd, Endpoint{server_host.ip, 7000});

  auto connected = client.Wait(connect_token, 10 * kSecond);
  auto accepted = server.Wait(accept_token, 10 * kSecond);
  if (!connected.ok() || !connected->status.ok() || !accepted.ok() ||
      !accepted->status.ok()) {
    std::puts("connect failed");
    return 1;
  }
  const QDesc server_qd = accepted->new_qd;
  std::printf("connected: client qd=%d <-> server qd=%d\n", client_qd, server_qd);
  // Control path is done (it used the kernel: device-queue leases, IOMMU setup).
  const std::uint64_t syscalls_after_setup = env.sim().counters().Get(Counter::kSyscalls);

  // --- data path: push an atomic unit, pop it on the other side ---
  // Allocate from the libOS memory manager: transparently registered, free-protected.
  SgArray request = client.SgaAlloc(26);
  std::memcpy(request.segment(0).mutable_data(), "abcdefghijklmnopqrstuvwxyz", 26);

  const QToken server_pop = *server.Pop(server_qd);
  auto pushed = client.BlockingPush(client_qd, request);
  std::printf("client pushed %zu bytes: %s\n", request.total_bytes(),
              pushed->status.ToString().c_str());

  auto popped = server.Wait(server_pop, 10 * kSecond);
  std::printf("server popped %zu bytes in %zu segment(s): \"%s\"\n",
              popped->sga.total_bytes(), popped->sga.segment_count(),
              popped->sga.ToString().c_str());

  // Echo it back — pushing the SAME sga: zero copies end to end.
  (void)server.BlockingPush(server_qd, popped->sga);
  auto reply = client.BlockingPop(client_qd);
  std::printf("client got the echo: \"%s\"\n", reply->sga.ToString().c_str());

  std::printf("simulated time elapsed: %.2f us\n", ToMicros(env.sim().now()));
  std::printf("kernel crossings on the data path: %llu (that's the point)\n",
              static_cast<unsigned long long>(env.sim().counters().Get(Counter::kSyscalls) -
                                              syscalls_after_setup));
  return 0;
}
